//! Throughput of one concurrent round: aggregate vs player-level engines,
//! across population and strategy-space sizes. The aggregate engine's cost
//! must be independent of `n`; the player-level engine's linear in `n`.

use congames_bench::games::{poly_links, skewed_two_hot};
use congames_dynamics::{EngineKind, ImitationProtocol, NuRule, Simulation};
use congames_sampling::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    for &(n, m) in &[(1_000u64, 8usize), (100_000, 8), (1_000_000, 8), (10_000, 64)] {
        let game = poly_links(m, 2, n);
        let start = skewed_two_hot(&game);
        group.bench_with_input(BenchmarkId::new("aggregate", format!("n{n}_m{m}")), &n, |b, _| {
            let mut sim = Simulation::new(
                &game,
                ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                start.clone(),
            )
            .expect("valid simulation");
            let mut rng = seeded_rng(1, 0);
            b.iter(|| sim.step(&mut rng).expect("step succeeds"));
        });
    }
    for &n in &[1_000u64, 10_000] {
        let game = poly_links(8, 2, n);
        let start = skewed_two_hot(&game);
        group.bench_with_input(BenchmarkId::new("player_level", n), &n, |b, _| {
            let mut sim = Simulation::new(
                &game,
                ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                start.clone(),
            )
            .expect("valid simulation")
            .with_engine(EngineKind::PlayerLevel);
            let mut rng = seeded_rng(2, 0);
            b.iter(|| sim.step(&mut rng).expect("step succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
