//! Network substrate costs: simple-path enumeration and the convex-cost
//! successive-shortest-path computation of `Φ*`.

use congames_model::Affine;
use congames_network::{builders, enumerate_paths, min_potential_flow};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    for &side in &[4usize, 6] {
        let (g, s, t) = builders::grid(side, side, |_| Affine::linear(1.0).into());
        group.bench_with_input(BenchmarkId::new("enumerate_grid", side), &side, |b, _| {
            b.iter(|| enumerate_paths(&g, s, t, 1_000_000).expect("grid paths"));
        });
    }
    for &n in &[100u64, 10_000] {
        let (g, s, t) = builders::braess([
            Affine::linear(10.0 / n as f64).into(),
            Affine::new(0.0, 10.0).into(),
            Affine::new(0.0, 10.0).into(),
            Affine::linear(10.0 / n as f64).into(),
            Affine::new(0.0, 0.5).into(),
        ]);
        group.bench_with_input(BenchmarkId::new("phi_star_braess", n), &n, |b, _| {
            b.iter(|| min_potential_flow(&g, s, t, n).expect("flow computes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
