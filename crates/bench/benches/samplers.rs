//! Random-variate substrate costs: binomial (all three internal paths),
//! multinomial, and alias-table sampling.

use congames_sampling::{binomial, multinomial_with_rest, AliasTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    // Bernoulli-sum path (n ≤ 32), BINV (n·p < 10), BTPE (n·p ≥ 10).
    for &(name, n, p) in &[
        ("binomial_small", 20u64, 0.3f64),
        ("binomial_binv", 10_000, 0.0005),
        ("binomial_btpe", 1_000_000, 0.25),
    ] {
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| binomial(&mut rng, n, p).expect("valid parameters"));
        });
    }
    for &k in &[4usize, 64] {
        let probs: Vec<f64> = (0..k).map(|i| 0.5 / k as f64 * (1.0 + i as f64 % 2.0)).collect();
        group.bench_with_input(BenchmarkId::new("multinomial_rest", k), &k, |b, _| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| multinomial_with_rest(&mut rng, 100_000, &probs).expect("valid"));
        });
    }
    for &k in &[16usize, 1024] {
        let weights: Vec<f64> = (1..=k).map(|i| i as f64).collect();
        let table = AliasTable::new(&weights).expect("valid weights");
        group.bench_with_input(BenchmarkId::new("alias_sample", k), &k, |b, _| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| table.sample(&mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
