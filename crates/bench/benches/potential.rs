//! Cost of Rosenthal-potential computation: from scratch (O(Σ x_e)) vs the
//! incremental per-move delta the engines rely on.

use congames_bench::games::poly_links;
use congames_model::{potential, potential_delta_for_load_change, ResourceId, State};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_potential(c: &mut Criterion) {
    let mut group = c.benchmark_group("potential");
    for &n in &[1_000u64, 100_000] {
        let game = poly_links(8, 2, n);
        let counts: Vec<u64> = {
            let mut v = vec![n / 8; 8];
            v[0] += n % 8;
            v
        };
        let state = State::from_counts(&game, counts).expect("valid state");
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
            b.iter(|| potential(&game, &state));
        });
        group.bench_with_input(BenchmarkId::new("incremental_delta", n), &n, |b, _| {
            let load = state.load(ResourceId::new(0));
            b.iter(|| {
                potential_delta_for_load_change(&game, ResourceId::new(0), 0, load, load + 16)
            });
        });
        // Big-flow delta: one `ΔΦ` covering as many intermediate loads as
        // the link carries (capped at 4096) — the batched `sum_range` walk.
        group.bench_with_input(BenchmarkId::new("delta_walk_big", n), &n, |b, _| {
            let load = state.load(ResourceId::new(0));
            let walk = load.min(4096);
            b.iter(|| {
                potential_delta_for_load_change(&game, ResourceId::new(0), 0, load - walk, load)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_potential);
criterion_main!(benches);
