//! C9 (Theorem 10): the Price of Imitation — the expected social cost of
//! the imitation-stable state reached from a random start, relative to the
//! fractional optimum `n/A_Γ` — is at most `3 + o(1)` in linear singleton
//! games without useless resources.

use congames_analysis::{run_trials, Summary, Table};
use congames_dynamics::{ImitationProtocol, Simulation, StopCondition, StopSpec};
use congames_model::LinearSingleton;
use congames_sampling::seeded_rng;

use crate::games::{random_linear_singleton, random_state};
use crate::harness::{banner, default_threads, fmt_f};

/// Run the experiment; `quick` shrinks trials and the sweep.
pub fn run(quick: bool) {
    banner("C9", "Theorem 10: Price of Imitation ≤ 3 + o(1) (linear singleton)");
    let trials = if quick { 20 } else { 60 };
    let ns: &[u64] = if quick { &[64, 512] } else { &[64, 256, 1024, 4096] };
    let m = 8;
    println!("{m} linear links, coefficients log-uniform in [1, 4]; random init");

    let mut table =
        Table::new(vec!["n", "mean SC/opt", "±95%", "max SC/opt", "stable runs", "bound"]);
    for &n in ns {
        let ratios: Vec<(f64, bool)> = run_trials(trials, 0xC9 + n, default_threads(), |seed| {
            let mut rng = seeded_rng(seed, 0);
            let game = random_linear_singleton(m, n, 4.0, &mut rng);
            let ls = LinearSingleton::analyze(&game).expect("linear singleton");
            let state = random_state(&game, &mut rng);
            let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), state)
                .expect("valid simulation");
            let out = sim
                .run(
                    &StopSpec::new(vec![
                        StopCondition::ImitationStable,
                        StopCondition::MaxRounds(500_000),
                    ])
                    .with_check_every(4),
                    &mut rng,
                )
                .expect("run succeeds");
            let ratio = ls.price_ratio(&game, sim.state());
            (ratio, out.reason == congames_dynamics::StopReason::ImitationStable)
        });
        let rs: Vec<f64> = ratios.iter().map(|r| r.0).collect();
        let stable = ratios.iter().filter(|r| r.1).count();
        let s = Summary::of(&rs);
        table.row(vec![
            n.to_string(),
            format!("{:.4}", s.mean()),
            fmt_f(s.ci95()),
            format!("{:.4}", s.max()),
            format!("{stable}/{trials}"),
            "3 + o(1)".into(),
        ]);
    }
    println!("{table}");
    println!(
        "paper's claim: the expected ratio stays below 3 + o(1); in practice \
         imitation lands very close to the optimum (ratios ≈ 1)."
    );
}
