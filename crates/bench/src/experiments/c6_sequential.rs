//! C6 (Theorem 6): sequential imitation dynamics can require exponentially
//! many steps. We build tripled quadratic threshold games (the paper's
//! construction), verify the never-collapse invariant along the way, and
//! compute — exactly, by exhaustive DAG search — the longest and shortest
//! improving imitation sequences from the canonical initial state.

use congames_analysis::{loglog_fit, Table};
use congames_lowerbounds::{
    tripled_initial_state, tripled_threshold_game, ImprovementGraph, MaxCutInstance,
};
use congames_sampling::seeded_rng;
use rand::Rng;

use crate::harness::{banner, fmt_f};

/// Run the experiment; `quick` shrinks the size sweep.
pub fn run(quick: bool) {
    banner("C6", "Theorem 6: worst-case sequential imitation sequences grow exponentially");
    let sizes: &[usize] = if quick { &[3, 4, 5, 6] } else { &[3, 4, 5, 6, 7, 8] };
    let instances_per_size = if quick { 8 } else { 24 };
    println!(
        "tripled quadratic threshold games (3 clones/player); exact longest and \
         shortest improving imitation sequences via exhaustive search over 4^n states"
    );

    let mut table = Table::new(vec![
        "base players n",
        "states 4^n",
        "max longest seq",
        "max shortest seq",
        "mean reachable states",
    ]);
    let mut growth = Vec::new();
    for &nb in sizes {
        let mut max_longest = 0u64;
        let mut max_shortest = 0u64;
        let mut reachable_sum = 0.0;
        for inst in 0..instances_per_size {
            let mut rng = seeded_rng(0xC6, (nb * 1000 + inst) as u64);
            let mc = MaxCutInstance::random(nb, 1 << 10, &mut rng);
            let game = tripled_threshold_game(&mc).expect("valid tripled game");
            let cut = rng.gen::<u64>() & ((1 << nb) - 1);
            let init = tripled_initial_state(&game, cut).expect("valid initial state");
            let graph = ImprovementGraph::new(&game, 0.0, true, 20_000_000)
                .expect("state space within cap");
            let idx = graph.index_of(&init);
            max_longest = max_longest.max(graph.longest_path_from(idx));
            max_shortest = max_shortest.max(graph.shortest_path_to_sink(idx));
            reachable_sum += graph.reachable_count(idx) as f64;
        }
        growth.push((nb as f64, (max_longest as f64).max(1.0)));
        table.row(vec![
            nb.to_string(),
            (1u64 << (2 * nb)).to_string(),
            max_longest.to_string(),
            max_shortest.to_string(),
            fmt_f(reachable_sum / instances_per_size as f64),
        ]);
    }
    println!("{table}");
    // Fit longest-sequence growth as exponential: ln(len) vs n linear.
    let pts: Vec<(f64, f64)> = growth.iter().map(|&(n, l)| (n, l.ln())).collect();
    let fit = congames_analysis::linear_fit(&pts);
    println!(
        "ln(max longest sequence) vs n: slope {:.3} per player (> 0 ⇒ exponential \
         growth ~ e^{{{:.2}·n}}; R² = {:.3})",
        fit.slope, fit.slope, fit.r_squared
    );
    let _ = loglog_fit(&growth); // shape cross-check: keep the polynomial fit handy
    println!(
        "note: random instances probe typical-case growth; the paper's adversarial \
         family (via the PLS machinery of [1]) certifies the worst case."
    );
}
