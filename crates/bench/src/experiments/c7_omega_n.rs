//! C7 (Section 4, end): no sampling protocol satisfies *all* agents quickly
//! — on the `(3,1,2,…,2)` instance the unique improving move is found with
//! probability `O(1/n)` per round, so the expected time until the last
//! agent is satisfied is `Ω(n)`.

use congames_analysis::{loglog_fit, Table};
use congames_dynamics::{ImitationProtocol, NuRule, StopCondition, StopSpec};
use congames_lowerbounds::omega_n_game;

use crate::harness::{banner, default_threads, fmt_f, rounds_summary};

/// Run the experiment; `quick` shrinks the sweep.
pub fn run(quick: bool) {
    banner("C7", "Ω(n) lower bound for satisfying all agents (δ = 0)");
    let trials = if quick { 40 } else { 150 };
    let ms: &[usize] = if quick { &[4, 16, 64] } else { &[4, 8, 16, 32, 64, 128, 256] };
    println!("m identical linear links, loads (3,1,2,…,2), n = 2m players");

    let mut table = Table::new(vec!["m", "n", "mean rounds", "±95%", "rounds/n"]);
    let mut pts = Vec::new();
    for &m in ms {
        let (game, state) = omega_n_game(m).expect("valid instance");
        let n = game.total_players();
        // ν = 1 for identical unit-slope links would swallow the unique
        // gain-1 move, so use the gain>0 rule (the bound is protocol-free).
        let proto = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
        let stop = StopSpec::new(vec![
            StopCondition::ImitationStable,
            StopCondition::MaxRounds(10_000_000),
        ]);
        let s = rounds_summary(&game, proto, &state, &stop, trials, 0xC7, default_threads());
        pts.push((n as f64, s.mean().max(0.5)));
        table.row(vec![
            m.to_string(),
            n.to_string(),
            fmt_f(s.mean()),
            fmt_f(s.ci95()),
            format!("{:.2}", s.mean() / n as f64),
        ]);
    }
    println!("{table}");
    let fit = loglog_fit(&pts);
    println!(
        "log-log slope of rounds vs n: {:.2} (lower bound predicts ≥ 1, i.e. \
         at least linear; R² = {:.3})",
        fit.slope, fit.r_squared
    );
}
