//! C10 (Lemma 12): in linear singleton games the IMITATION PROTOCOL reaches
//! an imitation-stable state within `O(n⁴·log n)` rounds. We measure the
//! actual scaling exponent, which should sit far below the bound.

use congames_analysis::{loglog_fit, run_trials, Summary, Table};
use congames_dynamics::{ImitationProtocol, Simulation, StopCondition, StopSpec};
use congames_sampling::seeded_rng;

use crate::games::{random_linear_singleton, random_state};
use crate::harness::{banner, default_threads, fmt_f};

/// Run the experiment; `quick` shrinks trials and the sweep.
pub fn run(quick: bool) {
    banner("C10", "Lemma 12: imitation-stable within O(n⁴ log n) rounds (linear singleton)");
    let trials = if quick { 20 } else { 60 };
    let ns: &[u64] = if quick { &[64, 256, 1024] } else { &[64, 256, 1024, 4096, 16384] };
    let m = 8;
    println!("{m} linear links, coefficients log-uniform in [1, 4]; random init");

    let mut table = Table::new(vec!["n", "mean rounds", "±95%", "max rounds", "n⁴·log n"]);
    let mut pts = Vec::new();
    for &n in ns {
        let rounds: Vec<f64> = run_trials(trials, 0xC10 + n, default_threads(), |seed| {
            let mut rng = seeded_rng(seed, 0);
            let game = random_linear_singleton(m, n, 4.0, &mut rng);
            let state = random_state(&game, &mut rng);
            let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), state)
                .expect("valid simulation");
            let out = sim
                .run(
                    &StopSpec::new(vec![
                        StopCondition::ImitationStable,
                        StopCondition::MaxRounds(2_000_000),
                    ])
                    .with_check_every(4),
                    &mut rng,
                )
                .expect("run succeeds");
            out.rounds as f64
        });
        let s = Summary::of(&rounds);
        pts.push((n as f64, s.mean().max(0.5)));
        let bound = (n as f64).powi(4) * (n as f64).ln();
        table.row(vec![
            n.to_string(),
            fmt_f(s.mean()),
            fmt_f(s.ci95()),
            fmt_f(s.max()),
            fmt_f(bound),
        ]);
    }
    println!("{table}");
    let fit = loglog_fit(&pts);
    println!(
        "measured scaling exponent of rounds vs n: {:.2} (Lemma 12 bound: ≤ 4; \
         R² = {:.3}) — the bound is loose, actual convergence is far faster",
        fit.slope, fit.r_squared
    );
}
