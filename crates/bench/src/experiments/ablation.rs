//! Ablations of the design choices DESIGN.md calls out: the migration
//! constant λ, the two round engines, self-sampling, and the ν rule.

use congames_analysis::Table;
use congames_dynamics::{
    EngineKind, ImitationProtocol, NuRule, SelfSampling, Simulation, StopCondition, StopSpec,
};
use congames_model::ApproxEquilibrium;
use congames_sampling::seeded_rng;

use crate::games::{braess_network, geometric_spread, poly_links, skewed_two_hot};
use crate::harness::{banner, default_threads, fmt_f, rounds_summary};

/// Run all ablations; `quick` shrinks trials.
pub fn run(quick: bool) {
    banner("ABL", "ablations: λ sweep, engine equivalence, self-sampling, ν rule");
    lambda_sweep(quick);
    engine_equivalence(quick);
    self_sampling(quick);
    nu_rule(quick);
}

fn lambda_sweep(quick: bool) {
    println!("\n-- λ sweep (Braess, n = 4096, to (0.05, 0.1, ν)-equilibrium) --");
    let trials = if quick { 8 } else { 25 };
    let net = braess_network(4096);
    let start = geometric_spread(net.game());
    let nu = net.game().params().nu;
    let eq = ApproxEquilibrium::new(0.05, 0.1, nu).expect("valid parameters");
    let mut table = Table::new(vec!["λ", "mean rounds", "±95%"]);
    for lambda in [0.0625, 0.125, 0.25, 0.5, 1.0] {
        let proto = ImitationProtocol::new(lambda).expect("valid lambda").into();
        let stop = StopSpec::new(vec![
            StopCondition::ApproxEquilibrium(eq),
            StopCondition::MaxRounds(1_000_000),
        ]);
        let s = rounds_summary(net.game(), proto, &start, &stop, trials, 0xAB1, default_threads());
        table.row(vec![fmt_f(lambda), fmt_f(s.mean()), fmt_f(s.ci95())]);
    }
    println!("{table}");
    println!("larger λ converges faster here because the λ/d damping already guards the Braess instance (d = 1).");
}

fn engine_equivalence(quick: bool) {
    println!("\n-- engine equivalence (Braess, n = 2048): aggregate vs player-level --");
    let trials = if quick { 8 } else { 20 };
    let net = braess_network(2048);
    let start = geometric_spread(net.game());
    let nu = net.game().params().nu;
    let eq = ApproxEquilibrium::new(0.05, 0.1, nu).expect("valid parameters");
    let stop = StopSpec::new(vec![
        StopCondition::ApproxEquilibrium(eq),
        StopCondition::MaxRounds(1_000_000),
    ]);
    let mut table = Table::new(vec!["engine", "mean rounds", "±95%"]);
    for (name, kind) in
        [("aggregate", EngineKind::Aggregate), ("player-level", EngineKind::PlayerLevel)]
    {
        let rounds = congames_analysis::run_trials(trials, 0xAB2, default_threads(), |seed| {
            let mut sim = Simulation::new(
                net.game(),
                ImitationProtocol::paper_default().into(),
                start.clone(),
            )
            .expect("valid simulation")
            .with_engine(kind);
            let mut rng = seeded_rng(seed, 1);
            sim.run(&stop, &mut rng).expect("run succeeds").rounds as f64
        });
        let s = congames_analysis::Summary::of(&rounds);
        table.row(vec![name.to_string(), fmt_f(s.mean()), fmt_f(s.ci95())]);
    }
    println!("{table}");
    println!("the two engines sample the same distribution; means must agree within CI.");
}

fn self_sampling(quick: bool) {
    println!("\n-- self-sampling: exclude (paper) vs include (analysis form) --");
    let trials = if quick { 8 } else { 25 };
    let net = braess_network(1024);
    let start = geometric_spread(net.game());
    let nu = net.game().params().nu;
    let eq = ApproxEquilibrium::new(0.05, 0.1, nu).expect("valid parameters");
    let stop = StopSpec::new(vec![
        StopCondition::ApproxEquilibrium(eq),
        StopCondition::MaxRounds(1_000_000),
    ]);
    let mut table = Table::new(vec!["sampling", "mean rounds", "±95%"]);
    for (name, mode) in
        [("exclude self", SelfSampling::Exclude), ("include self", SelfSampling::Include)]
    {
        let proto = ImitationProtocol::paper_default().with_self_sampling(mode).into();
        let s = rounds_summary(net.game(), proto, &start, &stop, trials, 0xAB3, default_threads());
        table.row(vec![name.to_string(), fmt_f(s.mean()), fmt_f(s.ci95())]);
    }
    println!("{table}");
    println!(
        "the two forms differ by O(1/n) sampling mass; results must be statistically identical."
    );
}

fn nu_rule(quick: bool) {
    println!("\n-- ν rule on/off (8 cubic links, n = 1024, to imitation-stable) --");
    let trials = if quick { 8 } else { 25 };
    let game = poly_links(8, 3, 1024);
    let start = skewed_two_hot(&game);
    let mut table = Table::new(vec![
        "ν rule",
        "mean rounds",
        "±95%",
        "stability threshold",
        "mean residual gain",
    ]);
    for (name, rule) in [("gain > ν (paper)", NuRule::Threshold), ("gain > 0", NuRule::None)] {
        let proto: congames_dynamics::Protocol =
            ImitationProtocol::paper_default().with_nu_rule(rule).into();
        let stop = StopSpec::new(vec![
            StopCondition::ImitationStable,
            StopCondition::MaxRounds(2_000_000),
        ])
        .with_check_every(4);
        // Measure both the rounds and the residual best support-restricted
        // gain at the final state (≤ ν for the paper rule, ≤ 0 without it).
        let results: Vec<(f64, f64)> =
            congames_analysis::run_trials(trials, 0xAB4, default_threads(), |seed| {
                let mut sim =
                    Simulation::new(&game, proto, start.clone()).expect("valid simulation");
                let mut rng = seeded_rng(seed, 0);
                let out = sim.run(&stop, &mut rng).expect("run succeeds");
                let residual = congames_model::best_deviation(&game, sim.state(), true)
                    .map_or(0.0, |b| b.gain.max(0.0));
                (out.rounds as f64, residual)
            });
        let rounds =
            congames_analysis::Summary::of(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let residual =
            congames_analysis::Summary::of(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let thr = match rule {
            NuRule::Threshold => game.params().nu,
            NuRule::None => 0.0,
        };
        table.row(vec![
            name.to_string(),
            fmt_f(rounds.mean()),
            fmt_f(rounds.ci95()),
            fmt_f(thr),
            fmt_f(residual.mean()),
        ]);
    }
    println!("{table}");
    println!(
        "dropping ν tightens the stability notion (gain > 0): convergence can take \
         longer but the final state has no residual improvement — the Section 6 \
         trade-off."
    );
}
