//! C3 (Theorem 4): exact imitation-stability can take pseudopolynomially
//! long — a single step's expected wait is inversely proportional to the
//! smallest available gain. Measured on the two-constant-link gap instance:
//! `E[T] = c/(λ·gain)`.

use congames_analysis::{loglog_fit, Table};
use congames_dynamics::{ImitationProtocol, StopCondition, StopSpec};
use congames_lowerbounds::gap_game;

use crate::harness::{banner, default_threads, fmt_f, rounds_summary};

/// Run the experiment; `quick` shrinks the sweep and seed count.
pub fn run(quick: bool) {
    banner("C3", "Theorem 4: hitting time of a single improving move scales as 1/gain");
    let c = 10.0;
    let n = 16;
    let lambda = 0.25;
    let trials = if quick { 30 } else { 100 };
    let gains: &[f64] =
        if quick { &[2.0, 1.0, 0.5, 0.25] } else { &[2.0, 1.0, 0.5, 0.25, 0.125, 0.0625] };
    println!("two constant links (c = {c}, c − g), n = {n}, λ = {lambda}");

    let mut table =
        Table::new(vec!["gain g", "mean rounds", "±95%", "theory c/(λg)", "measured/theory"]);
    let mut points = Vec::new();
    for &g in gains {
        let (game, state) = gap_game(c, g, n).expect("valid gap game");
        let proto = ImitationProtocol::new(lambda).expect("valid lambda").into();
        let stop = StopSpec::new(vec![
            StopCondition::ImitationStable,
            StopCondition::MaxRounds(4_000_000),
        ])
        .with_check_every(1);
        let s = rounds_summary(&game, proto, &state, &stop, trials, 0xC3, default_threads());
        let theory = c / (lambda * g);
        points.push((g, s.mean()));
        table.row(vec![
            fmt_f(g),
            fmt_f(s.mean()),
            fmt_f(s.ci95()),
            fmt_f(theory),
            format!("{:.2}", s.mean() / theory),
        ]);
    }
    println!("{table}");
    let fit = loglog_fit(&points);
    println!(
        "log-log slope of rounds vs gain: {:.3} (theory: −1; R² = {:.3})",
        fit.slope, fit.r_squared
    );
}
