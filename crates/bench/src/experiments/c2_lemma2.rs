//! C2 (Lemma 2): the error terms of concurrent migration eat at most half
//! of the virtual potential gain: `E[ΔΦ] ≤ ½·E[Σ V_PQ]` (both sides are
//! non-positive, so the realized-over-virtual ratio must be ≥ 0.5).

use congames_analysis::{run_trials, Table};
use congames_dynamics::{ImitationProtocol, Simulation};
use congames_sampling::seeded_rng;

use crate::games::{braess_network, geometric_spread};
use crate::harness::{banner, default_threads, fmt_f};

/// Run the experiment; `quick` shrinks seeds and rounds.
pub fn run(quick: bool) {
    banner("C2", "Lemma 2: E[ΔΦ] ≤ ½·E[Σ V_PQ] (concurrency error ≤ half)");
    let n = 512;
    let rounds = if quick { 40 } else { 150 };
    let seeds = if quick { 32 } else { 128 };
    let net = braess_network(n);
    let start = geometric_spread(net.game());

    // Per seed, per round: (exact E[ΣV] from the pre-round state, realized ΔΦ).
    let data: Vec<Vec<(f64, f64)>> = run_trials(seeds, 0xC2, default_threads(), |seed| {
        let mut sim =
            Simulation::new(net.game(), ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid simulation");
        let mut rng = seeded_rng(seed, 0);
        let mut rows = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let virt = sim.expected_virtual_gain();
            let stats = sim.step(&mut rng).expect("step succeeds");
            rows.push((virt, stats.delta_potential));
        }
        rows
    });

    // Average both quantities per round bucket and report the ratio
    // E[ΔΦ]/E[ΣV] (≥ 0.5 per Lemma 2; ≤ ~1 means little concurrency error).
    let mut table =
        Table::new(vec!["rounds", "mean E[ΣV]", "mean ΔΦ", "ratio ΔΦ/ΣV (Lemma 2: ≥ 0.5)"]);
    let buckets: &[(usize, usize)] = &[(0, 5), (5, 20), (20, 50), (50, 100), (100, 150)];
    let mut worst_ratio = f64::INFINITY;
    for &(lo, hi) in buckets {
        if lo >= rounds {
            break;
        }
        let hi = hi.min(rounds);
        let mut sum_v = 0.0;
        let mut sum_d = 0.0;
        for tr in &data {
            for &(v, d) in &tr[lo..hi] {
                sum_v += v;
                sum_d += d;
            }
        }
        if sum_v >= -1e-12 {
            // No expected movement in this bucket (already stable).
            table.row(vec![format!("{lo}..{hi}"), "0".into(), fmt_f(sum_d), "—".into()]);
            continue;
        }
        let ratio = sum_d / sum_v; // both negative ⇒ positive ratio
        worst_ratio = worst_ratio.min(ratio);
        table.row(vec![
            format!("{lo}..{hi}"),
            fmt_f(sum_v / ((hi - lo) * seeds) as f64),
            fmt_f(sum_d / ((hi - lo) * seeds) as f64),
            format!("{ratio:.3}"),
        ]);
    }
    println!("{table}");
    println!(
        "worst bucket ratio: {} (Lemma 2 bound: ≥ 0.5; ratios near 1 mean \
         the concurrency error is far below the worst case)",
        fmt_f(worst_ratio)
    );
}
