//! C1 (Corollary 3): the Rosenthal potential is a super-martingale under
//! the IMITATION PROTOCOL — the *mean* potential trajectory decreases
//! monotonically until an imitation-stable state, approaching `Φ*`.

use congames_analysis::{run_trials, Summary, Table};
use congames_dynamics::{ImitationProtocol, RecordConfig, Simulation, StopSpec};
use congames_sampling::seeded_rng;

use crate::games::{braess_network, geometric_spread};
use crate::harness::{banner, default_threads, fmt_f};

/// Run the experiment; `quick` shrinks seeds and rounds.
pub fn run(quick: bool) {
    banner("C1", "Corollary 3: E[Φ(x(t+1))] ≤ Φ(x(t)) — potential super-martingale");
    let n = 512;
    let rounds = if quick { 100 } else { 400 };
    let seeds = if quick { 16 } else { 64 };
    let net = braess_network(n);
    let phi_star = net.min_potential().expect("flow computes Φ*");
    let start = geometric_spread(net.game());
    let phi0 = congames_model::potential(net.game(), &start);
    println!("Braess diamond, n = {n}; Φ(x0) = {}, Φ* = {}", fmt_f(phi0), fmt_f(phi_star));

    // Per-seed potential trajectories.
    let trajectories: Vec<Vec<f64>> = run_trials(seeds, 0xC1, default_threads(), |seed| {
        let mut sim =
            Simulation::new(net.game(), ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid simulation")
                .with_recording(RecordConfig::every_round());
        let mut rng = seeded_rng(seed, 0);
        let out = sim.run(&StopSpec::max_rounds(rounds), &mut rng).expect("run succeeds");
        out.trajectory.records().iter().map(|r| r.potential).collect()
    });

    let mut table = Table::new(vec!["round", "mean Φ", "min Φ", "max Φ", "mean Φ − Φ*"]);
    let mut mean_prev = f64::INFINITY;
    let mut monotone_violations = 0u32;
    let checkpoints: Vec<u64> =
        [0, 1, 2, 5, 10, 20, 50, 100, 200, 400].into_iter().filter(|r| *r <= rounds).collect();
    for t in 0..=rounds as usize {
        let at: Vec<f64> = trajectories.iter().map(|tr| tr[t]).collect();
        let s = Summary::of(&at);
        if s.mean() > mean_prev + 1e-9 {
            monotone_violations += 1;
        }
        mean_prev = s.mean();
        if checkpoints.contains(&(t as u64)) {
            table.row(vec![
                t.to_string(),
                fmt_f(s.mean()),
                fmt_f(s.min()),
                fmt_f(s.max()),
                fmt_f(s.mean() - phi_star),
            ]);
        }
    }
    println!("{table}");
    println!(
        "mean-potential monotonicity violations over {} rounds: {monotone_violations} \
         (paper predicts 0 up to sampling noise)",
        rounds
    );
}
