//! Extension experiment (E-W): the atomic IMITATION PROTOCOL on
//! player-normalized games converges to the deterministic Wardrop imitation
//! flow as `n → ∞` — quantifying the paper's remark (Section 1.2) that the
//! continuous model of Fischer–Räcke–Vöcking is the noise-free limit, and
//! grounding Theorem 9's `ℓ(x/n)` scaling.

use congames_analysis::{loglog_fit, run_trials, Summary, Table};
use congames_dynamics::{ImitationProtocol, NuRule, Simulation};
use congames_model::{Affine, CongestionGame, State};
use congames_sampling::seeded_rng;
use congames_wardrop::{FlowState, ImitationFlow};

use crate::harness::{banner, default_threads, fmt_f};

fn scaled_game(coeffs: &[f64], n: u64) -> CongestionGame {
    CongestionGame::singleton(
        coeffs.iter().map(|&a| Affine::linear(a / n as f64).into()).collect(),
        n,
    )
    .expect("valid singleton game")
}

fn continuous_game(coeffs: &[f64]) -> CongestionGame {
    CongestionGame::singleton(coeffs.iter().map(|&a| Affine::linear(a).into()).collect(), 1)
        .expect("valid singleton game")
}

/// Run the experiment; `quick` shrinks the sweep and seeds.
pub fn run(quick: bool) {
    banner(
        "E-W",
        "extension: the atomic protocol converges to the continuous imitation flow (n → ∞)",
    );
    let coeffs = [1.0, 1.5, 2.0, 3.0];
    let rounds = 40usize;
    let seeds = if quick { 20 } else { 80 };
    let ns: &[u64] = if quick { &[64, 512, 4096] } else { &[64, 256, 1024, 4096, 16384, 65536] };
    println!(
        "4 player-normalized links ℓ_e(x) = a_e·x/n vs. the mean-field flow; \
         sup-norm share-trajectory distance over {rounds} rounds"
    );

    let cont_game = continuous_game(&coeffs);
    let flow = ImitationFlow::new(0.25, 1.0).expect("valid flow");
    let mut table = Table::new(vec!["n", "mean sup gap", "±95%", "gap·√n"]);
    let mut pts = Vec::new();
    for &n in ns {
        let atomic_game = scaled_game(&coeffs, n);
        let start_counts = vec![n / 10, n / 10, n / 10, n - 3 * (n / 10)];
        let start_shares: Vec<f64> = start_counts.iter().map(|&c| c as f64 / n as f64).collect();
        let gaps: Vec<f64> = run_trials(seeds, 0xE7 + n, default_threads(), |seed| {
            let mut sim = Simulation::new(
                &atomic_game,
                ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
                State::from_counts(&atomic_game, start_counts.clone()).expect("valid"),
            )
            .expect("valid simulation");
            let mut cont = FlowState::new(&cont_game, start_shares.clone()).expect("valid");
            let mut rng = seeded_rng(seed, 0);
            let mut worst: f64 = 0.0;
            for _ in 0..rounds {
                sim.step(&mut rng).expect("step succeeds");
                flow.step(&cont_game, &mut cont, 1.0);
                let share =
                    FlowState::from_atomic(&atomic_game, sim.state()).expect("valid share vector");
                worst = worst.max(share.distance(&cont));
            }
            worst
        });
        let s = Summary::of(&gaps);
        pts.push((n as f64, s.mean().max(1e-12)));
        table.row(vec![
            n.to_string(),
            fmt_f(s.mean()),
            fmt_f(s.ci95()),
            fmt_f(s.mean() * (n as f64).sqrt()),
        ]);
    }
    println!("{table}");
    let fit = loglog_fit(&pts);
    println!(
        "log-log slope of the gap vs n: {:.2} (sampling noise predicts −1/2; \
         R² = {:.3})",
        fit.slope, fit.r_squared
    );
}
