//! C8 (Theorem 9): in singleton games with offset-free latencies
//! `ℓⁿ(x) = ℓ(x/n)` and random initialization, the probability that any
//! link ever empties within poly(n) rounds decays exponentially in `n`.

use congames_analysis::{run_trials, Table};
use congames_dynamics::{ImitationProtocol, NuRule, Protocol, Simulation};
use congames_model::{Affine, CongestionGame, LatencyFn};
use congames_sampling::seeded_rng;

use crate::games::random_state;
use crate::harness::{banner, default_threads, fmt_f};

/// The fixed continuous latency vector `L`, scaled per population size
/// (Theorem 9's normalization leaves the elasticity unchanged).
fn scaled_links(n: u64) -> CongestionGame {
    let coeffs = [1.0, 1.5, 2.0, 3.0];
    let lats: Vec<LatencyFn> =
        coeffs.iter().map(|&a| Affine::linear(a / n as f64).into()).collect();
    CongestionGame::singleton(lats, n).expect("valid singleton game")
}

/// Run the experiment; `quick` shrinks trials and the sweep.
pub fn run(quick: bool) {
    banner("C8", "Theorem 9: P[some link empties within poly(n) rounds] = 2^(−Ω(n))");
    let trials = if quick { 100 } else { 400 };
    let ns: &[u64] = if quick { &[8, 16, 32, 64] } else { &[8, 16, 32, 64, 128, 256] };
    println!(
        "4 scaled linear links ℓ_e(x) = a_e·x/n, a = (1, 1.5, 2, 3); random init; \
         ν rule dropped per Section 6; horizon 20·n rounds"
    );

    let mut table = Table::new(vec!["n", "rounds", "extinct runs", "trials", "P[extinction]"]);
    for &n in ns {
        let game = scaled_links(n);
        let horizon = 20 * n;
        let proto: Protocol = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
        let extinctions: Vec<f64> = run_trials(trials, 0xC8 + n, default_threads(), |seed| {
            let mut rng = seeded_rng(seed, 0);
            let state = random_state(&game, &mut rng);
            if state.loads().contains(&0) {
                return 1.0;
            }
            let mut sim = Simulation::new(&game, proto, state).expect("valid simulation");
            for _ in 0..horizon {
                sim.step(&mut rng).expect("step succeeds");
                if sim.state().loads().contains(&0) {
                    return 1.0;
                }
            }
            0.0
        });
        let extinct = extinctions.iter().sum::<f64>() as u64;
        table.row(vec![
            n.to_string(),
            horizon.to_string(),
            extinct.to_string(),
            trials.to_string(),
            fmt_f(extinct as f64 / trials as f64),
        ]);
    }
    println!("{table}");
    println!(
        "paper's claim: the extinction probability vanishes exponentially as n \
         grows (the counts above should hit zero and stay there)."
    );
}
