//! C5 (Section 2.3): without the `1/d` elasticity damping, imitation
//! overshoots. On two links `{ℓ1 = c, ℓ2 = x^d}` the undamped expected
//! inflow to link 2 exceeds the balanced point by a factor `Θ(d)`; the
//! damped protocol approaches it monotonically.

use congames_analysis::{run_trials, Summary, Table};
use congames_dynamics::{Damping, ImitationProtocol, NuRule, Protocol, Simulation};
use congames_lowerbounds::overshooting_game;
use congames_model::StrategyId;
use congames_sampling::seeded_rng;

use crate::harness::{banner, default_threads, fmt_f};

/// Run the experiment; `quick` shrinks seeds.
pub fn run(quick: bool) {
    banner("C5", "Section 2.3: elasticity damping prevents overshooting");
    let n = 4096u64;
    let rounds = 40;
    let seeds = if quick { 40 } else { 200 };
    let lambda = 0.9; // aggressive, to make overshooting visible
    println!("links {{ℓ1 = c = 4^d, ℓ2 = x^d}}, n = {n}, λ = {lambda}; balanced load x₂* = 4");

    let mut table = Table::new(vec![
        "d",
        "protocol",
        "peak ℓ2/c (overshoot)",
        "mean ℓ2/c @end",
        "sign flips of Δx₂",
    ]);
    for d in [2u32, 4, 6, 8] {
        let c = 4f64.powi(d as i32);
        let seed_on_fast = 2;
        for (label, damping) in [("damped (λ/d)", Damping::Elasticity), ("undamped", Damping::None)]
        {
            let proto: Protocol = ImitationProtocol::new(lambda)
                .expect("valid lambda")
                .with_damping(damping)
                .with_nu_rule(NuRule::None)
                .into();
            // Per seed: (peak latency ratio, final latency ratio, sign flips).
            let rows: Vec<(f64, f64, f64)> =
                run_trials(seeds, 0xC5 + d as u64, default_threads(), |seed| {
                    let (game, state) =
                        overshooting_game(c, d, n, seed_on_fast).expect("valid instance");
                    let mut sim = Simulation::new(&game, proto, state).expect("valid simulation");
                    let mut rng = seeded_rng(seed, 0);
                    let mut peak: f64 = 0.0;
                    let mut prev_load = sim.state().count(StrategyId::new(1)) as i64;
                    let mut prev_delta = 0i64;
                    let mut flips = 0u32;
                    for _ in 0..rounds {
                        sim.step(&mut rng).expect("step succeeds");
                        let load = sim.state().count(StrategyId::new(1)) as i64;
                        let delta = load - prev_load;
                        if delta != 0 && prev_delta != 0 && delta.signum() != prev_delta.signum() {
                            flips += 1;
                        }
                        if delta != 0 {
                            prev_delta = delta;
                        }
                        prev_load = load;
                        let lat = (load as f64).powi(d as i32);
                        peak = peak.max(lat / c);
                    }
                    let final_lat = (prev_load as f64).powi(d as i32) / c;
                    (peak, final_lat, flips as f64)
                });
            let peaks = Summary::of(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
            let finals = Summary::of(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
            let flips = Summary::of(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
            table.row(vec![
                d.to_string(),
                label.to_string(),
                format!("{} ± {}", fmt_f(peaks.mean()), fmt_f(peaks.ci95())),
                fmt_f(finals.mean()),
                fmt_f(flips.mean()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "paper's claim: the undamped expected latency overshoot grows like Θ(d)·gap, \
         while the damped protocol stays near or below the balanced latency."
    );
}
