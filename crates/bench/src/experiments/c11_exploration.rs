//! C11 (Theorem 15 / Section 6): the EXPLORATION PROTOCOL (and any mixture
//! with imitation) converges to Nash equilibria — escaping the "lost
//! strategy" trap that stalls pure imitation — but pays for innovation with
//! much heavier damping, hence slower convergence to approximate equilibria.

use congames_analysis::Table;
use congames_dynamics::{
    ExplorationProtocol, ImitationProtocol, Protocol, StopCondition, StopReason, StopSpec,
};
use congames_model::{ApproxEquilibrium, State};

use crate::games::{poly_links, skewed_two_hot};
use crate::harness::{banner, default_threads, fmt_f, rounds_summary, run_once};

fn protocols() -> Vec<(&'static str, Protocol)> {
    vec![
        ("imitation", ImitationProtocol::paper_default().into()),
        ("exploration", ExplorationProtocol::paper_default().into()),
        ("combined 50/50", Protocol::combined_default()),
    ]
}

/// Run the experiment; `quick` shrinks trials.
pub fn run(quick: bool) {
    banner(
        "C11",
        "Theorem 15 / Section 6: exploration reaches Nash; imitation is faster but not innovative",
    );
    let trials = if quick { 10 } else { 30 };
    let n = 1024;
    let game = poly_links(8, 1, n);
    let params = game.params();
    let eq = ApproxEquilibrium::new(0.05, 0.1, params.nu).expect("valid parameters");

    println!("\n-- speed to a (0.05, 0.1, ν)-equilibrium from a skewed two-link start --");
    let start = skewed_two_hot(&game);
    let mut table = Table::new(vec!["protocol", "mean rounds", "±95%"]);
    for (name, proto) in protocols() {
        let stop = StopSpec::new(vec![
            StopCondition::ApproxEquilibrium(eq),
            StopCondition::MaxRounds(2_000_000),
        ])
        .with_check_every(4);
        let s = rounds_summary(&game, proto, &start, &stop, trials, 0xC11, default_threads());
        table.row(vec![name.to_string(), fmt_f(s.mean()), fmt_f(s.ci95())]);
    }
    println!("{table}");

    println!(
        "-- reaching a ν-Nash equilibrium from a lost-strategy start (all on the worst link) --"
    );
    let mut counts = vec![0u64; 8];
    counts[7] = n; // the most expensive link
    let stuck = State::from_counts(&game, counts).expect("valid state");
    let mut table2 = Table::new(vec!["protocol", "outcome", "rounds", "final support"]);
    for (name, proto) in protocols() {
        // Imitation-stability only terminates the non-innovative protocol;
        // exploration and the mixture can leave imitation-stable states.
        let mut conds = vec![
            StopCondition::NashEquilibrium { tol: params.nu },
            StopCondition::MaxRounds(500_000),
        ];
        if !proto.is_innovative() {
            conds.push(StopCondition::ImitationStable);
        }
        let stop = StopSpec::new(conds).with_check_every(4);
        let out = run_once(&game, proto, stuck.clone(), &stop, 0xC11F);
        let outcome = match out.reason {
            StopReason::NashEquilibrium => "ν-Nash reached",
            StopReason::ImitationStable => "stuck imitation-stable (strategy lost)",
            _ => "round budget exhausted",
        };
        // Re-run to inspect the final state support.
        let support = {
            let mut sim = congames_dynamics::Simulation::new(&game, proto, stuck.clone())
                .expect("valid simulation");
            let mut rng = congames_sampling::seeded_rng(0xC11F, 0);
            let _ = sim.run(&stop, &mut rng).expect("run succeeds");
            sim.state().support_size()
        };
        table2.row(vec![
            name.to_string(),
            outcome.to_string(),
            out.rounds.to_string(),
            support.to_string(),
        ]);
    }
    println!("{table2}");
    println!(
        "paper's claim: pure imitation stabilizes immediately in the degenerate \
         state (support 1); exploration and the combined protocol discover the \
         unused links and reach a Nash equilibrium."
    );
}
