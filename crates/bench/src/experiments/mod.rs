//! One module per reproduced claim. See DESIGN.md §1 for the claim table
//! and EXPERIMENTS.md for recorded results.

pub mod ablation;
pub mod c10_singleton_convergence;
pub mod c11_exploration;
pub mod c1_supermartingale;
pub mod c2_lemma2;
pub mod c3_pseudopoly;
pub mod c4_main_theorem;
pub mod c5_overshooting;
pub mod c6_sequential;
pub mod c7_omega_n;
pub mod c8_extinction;
pub mod c9_price_of_imitation;
pub mod shock_reconverge;
pub mod wardrop_limit;

/// Run every experiment in order.
pub fn run_all(quick: bool) {
    c1_supermartingale::run(quick);
    c2_lemma2::run(quick);
    c3_pseudopoly::run(quick);
    c4_main_theorem::run(quick);
    c5_overshooting::run(quick);
    c6_sequential::run(quick);
    c7_omega_n::run(quick);
    c8_extinction::run(quick);
    c9_price_of_imitation::run(quick);
    c10_singleton_convergence::run(quick);
    c11_exploration::run(quick);
    wardrop_limit::run(quick);
    shock_reconverge::run(quick);
    ablation::run(quick);
}
