//! C4 (Theorem 7 / Corollary 8) — the main result: the IMITATION PROTOCOL
//! reaches a (δ,ε,ν)-equilibrium in `O(d/(ε²δ) · log(Φ(x0)/Φ*))` rounds.
//!
//! Four sweeps probe the four factors of the bound:
//!
//! * **n** — rounds should grow like `log Φ(x0)/Φ*`, i.e. logarithmically
//!   in the number of players for fixed instance shape;
//! * **ε** — rounds should grow no faster than `1/ε²` (log–log slope ≥ −2);
//! * **δ** — rounds should grow no faster than `1/δ` (log–log slope ≥ −1);
//! * **d** — rounds should grow polynomially (at most quadratically) in the
//!   elasticity bound.

use congames_analysis::{linear_fit, loglog_fit, Table};
use congames_dynamics::{ImitationProtocol, Protocol, StopCondition, StopSpec};
use congames_model::{ApproxEquilibrium, State};

use crate::games::{braess_network, geometric_spread, poly_links, skewed_two_hot};
use crate::harness::{banner, default_threads, fmt_f, rounds_summary};

fn stop_for(eq: ApproxEquilibrium, cap: u64) -> StopSpec {
    StopSpec::new(vec![StopCondition::ApproxEquilibrium(eq), StopCondition::MaxRounds(cap)])
}

fn proto() -> Protocol {
    ImitationProtocol::paper_default().into()
}

/// Run the experiment; `quick` shrinks sweeps and seeds.
pub fn run(quick: bool) {
    banner("C4", "Theorem 7: rounds to (δ,ε,ν)-equilibrium = O(d/(ε²δ)·log(Φ0/Φ*))");
    sweep_n(quick);
    sweep_eps(quick);
    sweep_delta(quick);
    sweep_d(quick);
}

fn sweep_n(quick: bool) {
    println!("\n-- C4a: population sweep (Braess, ε = 0.1, δ = 0.05) --");
    let trials = if quick { 10 } else { 40 };
    let ns: &[u64] = if quick {
        &[128, 512, 2048, 8192]
    } else {
        &[128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072]
    };
    let mut table = Table::new(vec!["n", "mean rounds", "±95%", "log(Φ0/Φ*)", "rounds/log(Φ0/Φ*)"]);
    let mut pts = Vec::new();
    for &n in ns {
        let net = braess_network(n);
        let start = geometric_spread(net.game());
        let phi0 = congames_model::potential(net.game(), &start);
        let phi_star = net.min_potential().expect("flow computes Φ*");
        let nu = net.game().params().nu;
        let eq = ApproxEquilibrium::new(0.05, 0.1, nu).expect("valid parameters");
        let s = rounds_summary(
            net.game(),
            proto(),
            &start,
            &stop_for(eq, 500_000),
            trials,
            0xC4A + n,
            default_threads(),
        );
        let log_ratio = (phi0 / phi_star).ln();
        pts.push(((n as f64).ln(), s.mean()));
        table.row(vec![
            n.to_string(),
            fmt_f(s.mean()),
            fmt_f(s.ci95()),
            fmt_f(log_ratio),
            fmt_f(s.mean() / log_ratio),
        ]);
    }
    println!("{table}");
    let fit = linear_fit(&pts);
    println!(
        "rounds vs ln(n): slope {:.2} per e-fold (R² = {:.3}). For this family \
         log(Φ0/Φ*) is n-independent, so Theorem 7 predicts rounds bounded by a \
         CONSTANT in n — the measured saturation (see rounds/log column) confirms \
         the logarithmic-or-better dependence.",
        fit.slope, fit.r_squared
    );
}

fn sweep_eps(quick: bool) {
    println!("\n-- C4b: ε sweep (Braess, n = 4096, δ = 0.02) --");
    let trials = if quick { 10 } else { 40 };
    let epss: &[f64] = if quick {
        &[0.2, 0.1, 0.05, 0.025]
    } else {
        &[0.2, 0.141, 0.1, 0.0707, 0.05, 0.0354, 0.025]
    };
    let n = 4096;
    let net = braess_network(n);
    let start = geometric_spread(net.game());
    let nu = net.game().params().nu;
    let mut table = Table::new(vec!["ε", "mean rounds", "±95%"]);
    let mut pts = Vec::new();
    for &eps in epss {
        let eq = ApproxEquilibrium::new(0.02, eps, nu).expect("valid parameters");
        let s = rounds_summary(
            net.game(),
            proto(),
            &start,
            &stop_for(eq, 2_000_000),
            trials,
            0xC4B,
            default_threads(),
        );
        if s.mean() >= 1.0 {
            pts.push((eps, s.mean()));
        }
        table.row(vec![fmt_f(eps), fmt_f(s.mean()), fmt_f(s.ci95())]);
    }
    println!("{table}");
    if pts.len() >= 2 {
        let fit = loglog_fit(&pts);
        println!(
            "log-log slope of rounds vs ε: {:.2} over the non-trivial points \
             (theorem upper bound −2 ⇒ measured slope must be ≥ −2; R² = {:.3})",
            fit.slope, fit.r_squared
        );
    }
}

fn sweep_delta(quick: bool) {
    println!("\n-- C4c: δ sweep (32 linear links a_i = 1+i, n = 8192, uniform start, ε = 0.1) --");
    let trials = if quick { 10 } else { 40 };
    let deltas: &[f64] = if quick {
        &[0.2, 0.05, 0.0125, 0.003125]
    } else {
        &[0.4, 0.2, 0.1, 0.05, 0.025, 0.0125, 0.00625, 0.003125]
    };
    // Many heterogeneous links + a uniform start: the expensive-link
    // stragglers drain gradually, so the δ knob actually binds (on Braess
    // the unsatisfied set empties in one collective transition).
    let n = 8192u64;
    let game = poly_links(32, 1, n);
    let start = State::from_counts(&game, vec![n / 32; 32]).expect("uniform start");
    let nu = game.params().nu;
    let mut table = Table::new(vec!["δ", "mean rounds", "±95%"]);
    let mut pts = Vec::new();
    for &delta in deltas {
        let eq = ApproxEquilibrium::new(delta, 0.1, nu).expect("valid parameters");
        let s = rounds_summary(
            &game,
            proto(),
            &start,
            &stop_for(eq, 2_000_000),
            trials,
            0xC4C,
            default_threads(),
        );
        if s.mean() >= 1.0 {
            pts.push((delta, s.mean()));
        }
        table.row(vec![fmt_f(delta), fmt_f(s.mean()), fmt_f(s.ci95())]);
    }
    println!("{table}");
    if pts.len() >= 2 {
        let fit = loglog_fit(&pts);
        println!(
            "log-log slope of rounds vs δ: {:.2} over the non-trivial points \
             (theorem upper bound −1 ⇒ measured slope must be ≥ −1; in practice \
             the unsatisfied fraction decays geometrically, so the dependence is \
             closer to log(1/δ); R² = {:.3})",
            fit.slope, fit.r_squared
        );
    }
}

fn sweep_d(quick: bool) {
    println!(
        "\n-- C4d: elasticity sweep (8 monomial links a_i·x^d, n = 2048, ε = 0.1, δ = 0.05) --"
    );
    let trials = if quick { 10 } else { 40 };
    let ds: &[u32] = if quick { &[1, 2, 4] } else { &[1, 2, 3, 4, 5, 6] };
    let n = 2048;
    let mut table = Table::new(vec!["d", "ν", "mean rounds", "±95%", "rounds/d", "rounds/d²"]);
    let mut pts = Vec::new();
    for &d in ds {
        let game = poly_links(8, d, n);
        let start: State = skewed_two_hot(&game);
        let nu = game.params().nu;
        let eq = ApproxEquilibrium::new(0.05, 0.1, nu).expect("valid parameters");
        let s = rounds_summary(
            &game,
            proto(),
            &start,
            &stop_for(eq, 2_000_000),
            trials,
            0xC4D,
            default_threads(),
        );
        pts.push((d as f64, s.mean().max(0.5)));
        table.row(vec![
            d.to_string(),
            fmt_f(nu),
            fmt_f(s.mean()),
            fmt_f(s.ci95()),
            fmt_f(s.mean() / d as f64),
            fmt_f(s.mean() / (d * d) as f64),
        ]);
    }
    println!("{table}");
    let fit = loglog_fit(&pts);
    println!(
        "log-log slope of rounds vs d: {:.2} (Corollary 8 upper bound: ~2 \
         including the d·log n term; R² = {:.3})",
        fit.slope, fit.r_squared
    );
}
