//! Scenario experiment: local shock, global re-convergence. On a fleet of
//! `m = 32` identical linear links, degrading a *single* link moves the
//! equilibrium potential by only ≈ `1/(m-1)` ≈ 3% — inside the ε = 5%
//! recovery band — so time-to-recover after the shock is well defined:
//! the dynamics must evacuate the shocked link and re-spread its load.
//!
//! For each shock factor `f` the table reports, over many seeded trials,
//! the fraction of runs whose potential re-entered the ε-band of its
//! pre-shock value, the mean rounds that took, the mean overshoot ratio
//! (peak excursion over the pre-shock potential), and the mean rounds
//! until the run re-stabilized (`ImitationStable` rearmed after the
//! schedule drained). Larger factors displace more players, so overshoot
//! grows with `f` — but the steeper latency gradient also drives faster
//! evacuation, so re-stabilization *accelerates* with `f` while the
//! recovered fraction stays at 1: the convergence story of Theorem 1
//! carries over unchanged to the post-shock game.

use congames_analysis::{run_trials, shock_recovery, Summary, Table};
use congames_dynamics::{
    ImitationProtocol, Observer as _, RecordConfig, RecordSeries, Simulation, StopCondition,
    StopSpec,
};
use congames_model::{Affine, CongestionGame, State};
use congames_sampling::seeded_rng;
use congames_scenario::{generate::step_shock, ScheduleCursor};
use std::sync::Arc;

use crate::harness::{banner, default_threads, fmt_f};

/// Relative half-width of the recovery band.
const EPSILON: f64 = 0.05;

/// Run the experiment; `quick` shrinks seeds.
pub fn run(quick: bool) {
    banner("SHOCK", "scenario replay: ε-band re-convergence after a single-link shock");
    let m = 32usize;
    let n = 4096u64;
    let shock_round = 40u64;
    let budget = 2000u64;
    let seeds = if quick { 24 } else { 120 };
    println!(
        "m = {m} identical linear links, n = {n}; link 0 scaled ×f at round {shock_round}, \
         ε = {EPSILON} (equilibrium shift ≈ 1/(m-1) ≈ {:.1}%)",
        100.0 / (m as f64 - 1.0)
    );

    let game = CongestionGame::singleton(vec![Affine::linear(1.0).into(); m], n)
        .expect("valid fleet game");
    let mut table = Table::new(vec![
        "shock ×f",
        "recovered",
        "recovery rounds",
        "overshoot Φ_peak/Φ_pre",
        "re-stable rounds",
    ]);
    for factor in [2.0f64, 4.0, 16.0] {
        let schedule =
            Arc::new(step_shock(shock_round, 0, factor).expect("valid step shock").clone());
        // Per seed: (recovered 0/1, recovery rounds, overshoot ratio,
        // rounds from shock to re-stabilization).
        let rows: Vec<(f64, f64, f64, f64)> =
            run_trials(seeds, 0x5C0C + factor as u64, default_threads(), |seed| {
                let mut rng = seeded_rng(seed, 0);
                let start = random_state(&game, seed);
                let mut sim =
                    Simulation::new(&game, ImitationProtocol::paper_default().into(), start)
                        .expect("valid simulation")
                        .with_recording(RecordConfig::every(1))
                        .with_hook(Box::new(ScheduleCursor::new(Arc::clone(&schedule))));
                let stop = StopSpec::new(vec![
                    StopCondition::ImitationStable,
                    StopCondition::MaxRounds(budget),
                ])
                .with_check_every(4);
                let mut series = RecordSeries::new();
                let summary = sim.run_observed(&stop, &mut rng, &mut series).expect("run succeeds");
                let records = series.finish(&summary);
                let shocks = shock_recovery(&records, EPSILON);
                assert_eq!(shocks.len(), 1, "exactly one shock fired");
                let s = shocks[0];
                (
                    f64::from(u8::from(s.recovery_rounds.is_some())),
                    s.recovery_rounds.map_or(f64::NAN, |r| r as f64),
                    (s.pre_potential + s.overshoot) / s.pre_potential,
                    (summary.rounds - shock_round) as f64,
                )
            });
        let recovered = Summary::of(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let recovery =
            Summary::of(&rows.iter().map(|r| r.1).filter(|v| v.is_finite()).collect::<Vec<_>>());
        let overshoot = Summary::of(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let restable = Summary::of(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        table.row(vec![
            fmt_f(factor),
            format!("{:.0}%", recovered.mean() * 100.0),
            format!("{} ± {}", fmt_f(recovery.mean()), fmt_f(recovery.ci95())),
            format!("{} ± {}", fmt_f(overshoot.mean()), fmt_f(overshoot.ci95())),
            fmt_f(restable.mean()),
        ]);
    }
    println!("{table}");
    println!(
        "expected: recovered = 100% at every factor; overshoot grows with f (more displaced \
         players) while re-stabilization accelerates (a steeper latency gradient evacuates the \
         shocked link faster) — the fleet re-spreads within the ε-band every time.\n"
    );
}

/// A seed-derived uniform random start (the CLI's start-state recipe).
fn random_state(game: &CongestionGame, seed: u64) -> State {
    let mut rng = seeded_rng(seed, 1);
    let mut counts = vec![0u64; game.num_strategies()];
    for _ in 0..game.total_players() {
        use rand::Rng;
        counts[rng.gen_range(0..game.num_strategies())] += 1;
    }
    State::from_counts(game, counts).expect("valid start state")
}
