//! # congames-bench
//!
//! The experiment harness reproducing every claim of the paper (the paper
//! is pure theory, so the "tables and figures" are the theorems; see
//! DESIGN.md §1 and EXPERIMENTS.md for the claim ↔ experiment mapping).
//!
//! Each claim `C1..C11` plus the ablation suite lives in
//! [`experiments`]; the `exp_*` binaries are thin wrappers, and `exp_all`
//! runs everything. Pass `quick` as the first CLI argument (or set
//! `CONGAMES_QUICK=1`) for reduced parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod games;
pub mod harness;

/// Whether the invoking binary asked for the reduced parameter set
/// (first CLI argument `quick`, or `CONGAMES_QUICK=1`).
pub fn quick_flag() -> bool {
    std::env::args().nth(1).is_some_and(|a| a == "quick")
        || std::env::var("CONGAMES_QUICK").map(|v| v == "1").unwrap_or(false)
}
