//! Experiment C3 binary; see `congames_bench::experiments::c3_pseudopoly`.
fn main() {
    congames_bench::experiments::c3_pseudopoly::run(congames_bench::quick_flag());
}
