//! Experiment C4 binary; see `congames_bench::experiments::c4_main_theorem`.
fn main() {
    congames_bench::experiments::c4_main_theorem::run(congames_bench::quick_flag());
}
