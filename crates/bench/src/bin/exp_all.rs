//! Run every experiment (C1..C11 plus ablations) in order.
fn main() {
    congames_bench::experiments::run_all(congames_bench::quick_flag());
}
