//! Wardrop-limit extension experiment; see
//! `congames_bench::experiments::wardrop_limit`.
fn main() {
    congames_bench::experiments::wardrop_limit::run(congames_bench::quick_flag());
}
