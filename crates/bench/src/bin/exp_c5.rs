//! Experiment C5 binary; see `congames_bench::experiments::c5_overshooting`.
fn main() {
    congames_bench::experiments::c5_overshooting::run(congames_bench::quick_flag());
}
