//! Experiment C11 binary; see `congames_bench::experiments::c11_exploration`.
fn main() {
    congames_bench::experiments::c11_exploration::run(congames_bench::quick_flag());
}
