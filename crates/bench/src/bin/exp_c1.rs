//! Experiment C1 binary; see `congames_bench::experiments::c1_supermartingale`.
fn main() {
    congames_bench::experiments::c1_supermartingale::run(congames_bench::quick_flag());
}
