//! Experiment C6 binary; see `congames_bench::experiments::c6_sequential`.
fn main() {
    congames_bench::experiments::c6_sequential::run(congames_bench::quick_flag());
}
