//! Ablation suite binary; see `congames_bench::experiments::ablation`.
fn main() {
    congames_bench::experiments::ablation::run(congames_bench::quick_flag());
}
