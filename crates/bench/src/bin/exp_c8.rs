//! Experiment C8 binary; see `congames_bench::experiments::c8_extinction`.
fn main() {
    congames_bench::experiments::c8_extinction::run(congames_bench::quick_flag());
}
