//! Experiment C7 binary; see `congames_bench::experiments::c7_omega_n`.
fn main() {
    congames_bench::experiments::c7_omega_n::run(congames_bench::quick_flag());
}
