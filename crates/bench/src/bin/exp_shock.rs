//! Scenario shock experiment binary; see
//! `congames_bench::experiments::shock_reconverge`.
fn main() {
    congames_bench::experiments::shock_reconverge::run(congames_bench::quick_flag());
}
