//! Experiment C9 binary; see `congames_bench::experiments::c9_price_of_imitation`.
fn main() {
    congames_bench::experiments::c9_price_of_imitation::run(congames_bench::quick_flag());
}
