//! Experiment C2 binary; see `congames_bench::experiments::c2_lemma2`.
fn main() {
    congames_bench::experiments::c2_lemma2::run(congames_bench::quick_flag());
}
