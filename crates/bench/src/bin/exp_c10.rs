//! Experiment C10 binary; see `congames_bench::experiments::c10_singleton_convergence`.
fn main() {
    congames_bench::experiments::c10_singleton_convergence::run(congames_bench::quick_flag());
}
