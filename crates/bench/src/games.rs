//! Shared game families used by the experiments.

use congames_model::{Affine, CongestionGame, Constant, LatencyFn, Monomial, State};
use congames_network::{builders, NetworkGame};
use rand::Rng;

/// The classic Braess diamond with `n` players: congestible outer edges
/// (`ℓ(x) = x·10/n`), constant cross edges (`ℓ = 10`), and a cheap bridge
/// (`ℓ = 0.5`). Scaling the linear slopes by `n` keeps the two edge types
/// comparable at every population size, which is what makes the instance
/// interesting.
pub fn braess_network(n: u64) -> NetworkGame {
    let a = 10.0 / n as f64;
    let (g, s, t) = builders::braess([
        Affine::linear(a).into(),
        Constant::new(10.0).into(),
        Constant::new(10.0).into(),
        Affine::linear(a).into(),
        Constant::new(0.5).into(),
    ]);
    NetworkGame::build(g, s, t, n, 100).expect("braess builds")
}

/// The worst-start state for a network game: everybody on the first path.
/// Under pure imitation this state is *absorbing* (nothing else can be
/// sampled) — use it for the lost-strategy demonstrations, and
/// [`geometric_spread`] for convergence measurements.
pub fn pile_up(net: &NetworkGame) -> State {
    State::all_on_first(net.game())
}

/// A heavily skewed but full-support start: strategy `i` of each class gets
/// a share proportional to `4^(S−i)`, so imitation can reach everything but
/// begins far from balance (~75% of players on the first strategy).
pub fn geometric_spread(game: &CongestionGame) -> State {
    let mut counts = vec![0u64; game.num_strategies()];
    for class in game.classes() {
        let ids: Vec<u32> = class.strategy_range().collect();
        let s = ids.len();
        let total_w: f64 = (0..s).map(|i| 4f64.powi((s - i) as i32)).sum();
        let n = class.players();
        let mut assigned = 0u64;
        for (i, &id) in ids.iter().enumerate() {
            let w = 4f64.powi((s - i) as i32) / total_w;
            let c = ((n as f64) * w).floor() as u64;
            counts[id as usize] = c;
            assigned += c;
        }
        // Put the rounding remainder on the most loaded strategy.
        counts[ids[0] as usize] += n - assigned;
    }
    State::from_counts(game, counts).expect("counts sum to class sizes")
}

/// `m` parallel links with monomial latencies `a_i·x^d`, coefficients
/// `a_i = 1 + i` (asymmetric so equilibria are non-trivial).
pub fn poly_links(m: usize, d: u32, n: u64) -> CongestionGame {
    let lats: Vec<LatencyFn> = (0..m).map(|i| Monomial::new(1.0 + i as f64, d).into()).collect();
    CongestionGame::singleton(lats, n).expect("valid singleton game")
}

/// A linear singleton game with log-uniform random coefficients in
/// `[1, spread]`.
pub fn random_linear_singleton(
    m: usize,
    n: u64,
    spread: f64,
    rng: &mut impl Rng,
) -> CongestionGame {
    let lats: Vec<LatencyFn> = (0..m)
        .map(|_| {
            let a = (rng.gen::<f64>() * spread.ln()).exp();
            Affine::linear(a).into()
        })
        .collect();
    CongestionGame::singleton(lats, n).expect("valid singleton game")
}

/// A state assigning each player to a uniformly random strategy of its
/// class (the random initialization of Theorem 9 / Theorem 10).
pub fn random_state(game: &CongestionGame, rng: &mut impl Rng) -> State {
    let mut counts = vec![0u64; game.num_strategies()];
    for class in game.classes() {
        let ids: Vec<u32> = class.strategy_range().collect();
        for _ in 0..class.players() {
            counts[ids[rng.gen_range(0..ids.len())] as usize] += 1;
        }
    }
    State::from_counts(game, counts).expect("counts sum to class sizes")
}

/// An interior two-hot start: players split `3:1` between the first two
/// strategies of each class (imitation needs a support of at least two).
pub fn skewed_two_hot(game: &CongestionGame) -> State {
    let mut counts = vec![0u64; game.num_strategies()];
    for class in game.classes() {
        let ids: Vec<u32> = class.strategy_range().collect();
        assert!(ids.len() >= 2, "two-hot start needs two strategies");
        let n = class.players();
        counts[ids[0] as usize] = n - n / 4;
        counts[ids[1] as usize] = n / 4;
    }
    State::from_counts(game, counts).expect("counts sum to class sizes")
}

/// A *sparse-support* start: each class's players spread evenly over its
/// first `k` strategies, the remaining `S − k` strategies empty. This is
/// the shape of a near-converged imitation round in a huge strategy space
/// (support invariance keeps the dynamics inside these `k` strategies
/// forever), which is what the support-indexed sparse kernels accelerate.
pub fn sparse_support(game: &CongestionGame, k: usize) -> State {
    let mut counts = vec![0u64; game.num_strategies()];
    for class in game.classes() {
        let ids: Vec<u32> = class.strategy_range().collect();
        let k = k.min(ids.len());
        assert!(k >= 1, "sparse start needs at least one strategy");
        let n = class.players();
        let share = n / k as u64;
        assert!(share >= 1, "sparse start needs at least {k} players per class (got {n})");
        for &id in &ids[..k] {
            counts[id as usize] = share;
        }
        counts[ids[0] as usize] += n - share * k as u64;
    }
    State::from_counts(game, counts).expect("counts sum to class sizes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn braess_has_three_paths() {
        let net = braess_network(100);
        assert_eq!(net.game().num_strategies(), 3);
        assert_eq!(net.game().total_players(), 100);
        let s = pile_up(&net);
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn poly_links_params() {
        let g = poly_links(4, 3, 50);
        assert_eq!(g.num_strategies(), 4);
        assert!((g.params().d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_state_is_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = poly_links(4, 2, 100);
        let s = random_state(&g, &mut rng);
        assert_eq!(s.counts().iter().sum::<u64>(), 100);
        assert!(s.loads_consistent(&g));
    }

    #[test]
    fn skewed_two_hot_split() {
        let g = poly_links(4, 1, 100);
        let s = skewed_two_hot(&g);
        assert_eq!(s.counts()[0], 75);
        assert_eq!(s.counts()[1], 25);
    }

    #[test]
    fn sparse_support_occupies_exactly_k() {
        let g = poly_links(64, 2, 1000);
        let s = sparse_support(&g, 8);
        assert_eq!(s.support_size(), 8);
        assert_eq!(s.counts().iter().sum::<u64>(), 1000);
        assert_eq!(s.counts()[0], 125); // even split, no remainder
        assert_eq!(s.counts()[8], 0);
    }

    #[test]
    fn random_linear_singleton_coefficients_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_linear_singleton(6, 10, 4.0, &mut rng);
        for r in g.resources() {
            let a = r.latency_at(1);
            assert!((1.0..=4.0).contains(&a), "coefficient {a}");
        }
    }
}
