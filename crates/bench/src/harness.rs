//! Common measurement helpers for the experiment binaries.

use congames_analysis::Summary;
use congames_dynamics::{
    Ensemble, FinalSummary, MapItem, Protocol, RunOutcome, RunSummary, ScalarStats, Simulation,
    StopSpec,
};
use congames_model::{CongestionGame, State};
use congames_sampling::seeded_rng;

/// Print the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} — {claim} ===");
}

/// Run one simulation from `state` until `stop` fires; returns the outcome.
pub fn run_once(
    game: &CongestionGame,
    protocol: Protocol,
    state: State,
    stop: &StopSpec,
    seed: u64,
) -> RunOutcome {
    let mut sim = Simulation::new(game, protocol, state).expect("valid simulation");
    let mut rng = seeded_rng(seed, 0);
    sim.run(stop, &mut rng).expect("simulation run succeeds")
}

/// Measure rounds-to-stop over `trials` seeds (parallel, via
/// [`Ensemble::run_reduced`]) and summarize. `threads` comes from
/// [`default_threads`] in the binaries; the summary is identical for every
/// thread count. The reduction is fully streamed — count/mean/sd/min/max
/// are exact online moments and the quartiles come from a counted
/// quantile sketch (within 1% relative error) — so memory stays `O(1)` in
/// the trial count.
pub fn rounds_summary(
    game: &CongestionGame,
    protocol: Protocol,
    state: &State,
    stop: &StopSpec,
    trials: usize,
    base_seed: u64,
    threads: usize,
) -> Summary {
    let stats = Ensemble::new(game, protocol, state.clone())
        .expect("valid ensemble configuration")
        .trials(trials)
        .base_seed(base_seed)
        .threads(threads)
        .run_reduced(
            stop,
            |_trial| FinalSummary,
            MapItem::new(|s: RunSummary| s.rounds as f64, ScalarStats::new()),
        )
        .expect("ensemble run succeeds")
        .into_inner();
    Summary::from_reduced(&stats)
}

/// A conservative thread count for trial parallelism.
pub fn default_threads() -> usize {
    Ensemble::default_threads()
}

/// Format a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_dynamics::{ImitationProtocol, NuRule, StopCondition};
    use congames_model::Affine;

    #[test]
    fn rounds_summary_is_deterministic() {
        let game = CongestionGame::singleton(
            vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()],
            64,
        )
        .unwrap();
        let state = State::from_counts(&game, vec![48, 16]).unwrap();
        let proto: Protocol = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
        let stop =
            StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(10_000)]);
        let a = rounds_summary(&game, proto, &state, &stop, 8, 7, 2);
        let b = rounds_summary(&game, proto, &state, &stop, 8, 7, 4);
        assert_eq!(a.mean(), b.mean(), "thread count must not change results");
        assert!(a.mean() > 0.0);
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.5), "1.500");
        assert!(fmt_f(123456.0).contains('e'));
        assert!(fmt_f(0.0001).contains('e'));
    }
}
