//! # congames-lowerbounds
//!
//! Lower-bound constructions and counter-example instances from the paper:
//!
//! * [`maxcut`] — weighted MaxCut instances and their local search, the root
//!   of the PLS machinery behind Section 3.2.
//! * [`threshold`] — (quadratic) threshold games: two-strategy congestion
//!   games whose best-response dynamics are exactly MaxCut local search.
//! * [`tripled`] — the Theorem 6 construction: every player is replaced by
//!   three clones so that *imitation* (which needs someone to imitate)
//!   embeds the threshold game's improvement structure.
//! * [`seqgraph`] — exhaustive analysis of the improvement graph of small
//!   games: exact longest and shortest improving sequences, used to measure
//!   the sequential lower bound of Theorem 6.
//! * [`examples`] — the paper's inline instances: the Section 2.3
//!   overshooting game, the Ω(n) instance from the end of Section 4, and a
//!   single-improver instance exhibiting the pseudopolynomial wait of
//!   Theorem 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod examples;
pub mod maxcut;
pub mod seqgraph;
pub mod threshold;
pub mod tripled;

pub use examples::{gap_game, omega_n_game, overshooting_game};
pub use maxcut::MaxCutInstance;
pub use seqgraph::ImprovementGraph;
pub use threshold::{quadratic_threshold_game, state_from_cut};
pub use tripled::{tripled_initial_state, tripled_threshold_game};
