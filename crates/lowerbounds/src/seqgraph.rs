//! Exhaustive analysis of the improvement graph of small games.
//!
//! For games whose state space is small (e.g. tripled threshold games with
//! `4^n` states), we can answer the Theorem 6 questions *exactly*:
//!
//! * the length of the **longest** improving sequence from a state, and
//! * the length of the **shortest** improving sequence from a state to any
//!   stable state (Theorem 6 asserts a family where even this is
//!   exponential).
//!
//! Improving moves strictly decrease Rosenthal's potential, so the
//! improvement graph is a DAG and the longest path is well-defined.

use std::collections::HashMap;

use congames_model::{CongestionGame, GameError, State, StrategyId};

/// The improvement graph of a game: nodes are states, edges are
/// single-player moves improving by more than `tol` (optionally restricted
/// to the support, i.e. imitation moves).
///
/// States are indexed densely by mixed-radix composition indices; the graph
/// is never materialized — successors are computed on demand.
#[derive(Debug)]
pub struct ImprovementGraph<'g> {
    game: &'g CongestionGame,
    tol: f64,
    support_only: bool,
    /// Per class: all compositions of its players over its strategies.
    comps: Vec<Vec<Vec<u64>>>,
    /// Per class: composition → index lookup.
    comp_index: Vec<HashMap<Vec<u64>, u64>>,
    /// Mixed-radix strides per class.
    strides: Vec<u64>,
    num_states: u64,
}

impl<'g> ImprovementGraph<'g> {
    /// Build the improvement graph handle for `game`.
    ///
    /// `support_only = true` restricts moves to imitation (the destination
    /// must already be in use); `tol` is the minimum improvement.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] if the state space exceeds
    /// `max_states`.
    pub fn new(
        game: &'g CongestionGame,
        tol: f64,
        support_only: bool,
        max_states: u64,
    ) -> Result<Self, GameError> {
        let mut comps = Vec::with_capacity(game.classes().len());
        let mut comp_index = Vec::with_capacity(game.classes().len());
        let mut num_states: u64 = 1;
        for class in game.classes() {
            let list = compositions(class.players(), class.num_strategies());
            num_states = num_states.saturating_mul(list.len() as u64);
            if num_states > max_states {
                return Err(GameError::InvalidParameter {
                    name: "game",
                    message: "state space exceeds the configured max_states",
                });
            }
            let mut idx = HashMap::with_capacity(list.len());
            for (k, c) in list.iter().enumerate() {
                idx.insert(c.clone(), k as u64);
            }
            comps.push(list);
            comp_index.push(idx);
        }
        let mut strides = vec![0u64; comps.len()];
        let mut acc = 1u64;
        for (i, list) in comps.iter().enumerate() {
            strides[i] = acc;
            acc *= list.len() as u64;
        }
        Ok(ImprovementGraph { game, tol, support_only, comps, comp_index, strides, num_states })
    }

    /// Total number of states.
    pub fn num_states(&self) -> u64 {
        self.num_states
    }

    /// The dense index of a state.
    pub fn index_of(&self, state: &State) -> u64 {
        let mut idx = 0u64;
        for (ci, class) in self.game.classes().iter().enumerate() {
            let counts: Vec<u64> =
                class.strategy_range().map(|s| state.counts()[s as usize]).collect();
            let k = self.comp_index[ci][&counts];
            idx += k * self.strides[ci];
        }
        idx
    }

    /// The state with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ num_states()`.
    pub fn state_of(&self, idx: u64) -> State {
        assert!(idx < self.num_states, "state index out of range");
        let mut counts = vec![0u64; self.game.num_strategies()];
        for (ci, class) in self.game.classes().iter().enumerate() {
            let k = (idx / self.strides[ci]) % self.comps[ci].len() as u64;
            let comp = &self.comps[ci][k as usize];
            for (off, s) in class.strategy_range().enumerate() {
                counts[s as usize] = comp[off];
            }
        }
        State::from_counts(self.game, counts).expect("composition indices are consistent")
    }

    /// Successor state indices via single improving moves.
    pub fn successors(&self, idx: u64) -> Vec<u64> {
        let state = self.state_of(idx);
        let mut out = Vec::new();
        for (ci, class) in self.game.classes().iter().enumerate() {
            for from_raw in class.strategy_range() {
                let from = StrategyId::new(from_raw);
                if state.count(from) == 0 {
                    continue;
                }
                let l_from = state.strategy_latency(self.game, from);
                for to_raw in class.strategy_range() {
                    if to_raw == from_raw {
                        continue;
                    }
                    let to = StrategyId::new(to_raw);
                    if self.support_only && state.count(to) == 0 {
                        continue;
                    }
                    let gain = l_from - state.latency_after_move(self.game, from, to);
                    if gain > self.tol {
                        out.push(self.neighbor_index(idx, ci, class, &state, from, to));
                    }
                }
            }
        }
        out
    }

    fn neighbor_index(
        &self,
        idx: u64,
        ci: usize,
        class: &congames_model::PlayerClass,
        state: &State,
        from: StrategyId,
        to: StrategyId,
    ) -> u64 {
        let mut comp: Vec<u64> =
            class.strategy_range().map(|s| state.counts()[s as usize]).collect();
        let base = class.strategy_range().start;
        comp[(from.raw() - base) as usize] -= 1;
        comp[(to.raw() - base) as usize] += 1;
        let new_k = self.comp_index[ci][&comp];
        let old_k = (idx / self.strides[ci]) % self.comps[ci].len() as u64;
        let delta = (new_k as i128 - old_k as i128) * self.strides[ci] as i128;
        u64::try_from(idx as i128 + delta).expect("neighbor index stays in range")
    }

    /// Whether no improving move leaves this state (stability w.r.t. the
    /// configured move set).
    pub fn is_sink(&self, idx: u64) -> bool {
        self.successors(idx).is_empty()
    }

    /// The length of the longest improving sequence starting at `idx`
    /// (exact, via memoized DFS over the reachable DAG).
    pub fn longest_path_from(&self, idx: u64) -> u64 {
        let mut memo: HashMap<u64, u64> = HashMap::new();
        // Iterative post-order DFS: (state, successors, next_child).
        let mut stack: Vec<(u64, Vec<u64>, usize)> = vec![(idx, self.successors(idx), 0)];
        while let Some((s, succs, child)) = stack.last().cloned() {
            if memo.contains_key(&s) {
                stack.pop();
                continue;
            }
            if child < succs.len() {
                stack.last_mut().expect("nonempty").2 += 1;
                let c = succs[child];
                if !memo.contains_key(&c) {
                    stack.push((c, self.successors(c), 0));
                }
            } else {
                let best = succs.iter().map(|c| memo[c] + 1).max().unwrap_or(0);
                memo.insert(s, best);
                stack.pop();
            }
        }
        memo[&idx]
    }

    /// The length of the shortest improving sequence from `idx` to any sink
    /// (BFS). A sink start returns 0.
    pub fn shortest_path_to_sink(&self, idx: u64) -> u64 {
        let mut dist: HashMap<u64, u64> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        dist.insert(idx, 0);
        queue.push_back(idx);
        while let Some(s) = queue.pop_front() {
            let d = dist[&s];
            let succs = self.successors(s);
            if succs.is_empty() {
                return d;
            }
            for c in succs {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(c) {
                    e.insert(d + 1);
                    queue.push_back(c);
                }
            }
        }
        unreachable!("a finite DAG always reaches a sink")
    }

    /// Number of states reachable from `idx` (including itself).
    pub fn reachable_count(&self, idx: u64) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![idx];
        seen.insert(idx);
        while let Some(s) = stack.pop() {
            for c in self.successors(s) {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        seen.len() as u64
    }
}

/// All compositions of `total` into `parts` non-negative summands.
fn compositions(total: u64, parts: usize) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut current = vec![0u64; parts];
    fill(total, 0, &mut current, &mut out);
    out
}

fn fill(remaining: u64, pos: usize, current: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
    if pos == current.len() - 1 {
        current[pos] = remaining;
        out.push(current.clone());
        return;
    }
    for v in 0..=remaining {
        current[pos] = v;
        fill(remaining - v, pos + 1, current, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::Affine;

    fn two_links(n: u64) -> CongestionGame {
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], n)
            .unwrap()
    }

    #[test]
    fn compositions_count_is_binomial() {
        // C(n + k − 1, k − 1): 4 players, 3 parts → C(6,2) = 15.
        assert_eq!(compositions(4, 3).len(), 15);
        assert_eq!(compositions(0, 2).len(), 1);
        assert_eq!(compositions(3, 1), vec![vec![3]]);
        for c in compositions(4, 3) {
            assert_eq!(c.iter().sum::<u64>(), 4);
        }
    }

    #[test]
    fn index_roundtrip() {
        let game = two_links(5);
        let g = ImprovementGraph::new(&game, 0.0, false, 1_000).unwrap();
        assert_eq!(g.num_states(), 6);
        for idx in 0..g.num_states() {
            let s = g.state_of(idx);
            assert_eq!(g.index_of(&s), idx);
        }
    }

    #[test]
    fn successors_of_two_link_game() {
        // counts (5,0): best response moves one player → (4,1).
        let game = two_links(5);
        let g = ImprovementGraph::new(&game, 0.0, false, 1_000).unwrap();
        let s50 = State::from_counts(&game, vec![5, 0]).unwrap();
        let idx = g.index_of(&s50);
        let succ = g.successors(idx);
        assert_eq!(succ.len(), 1);
        let next = g.state_of(succ[0]);
        assert_eq!(next.counts(), &[4, 1]);
        // Balanced-ish (3,2) is a sink: gain = 3 − 3 = 0.
        let s32 = State::from_counts(&game, vec![3, 2]).unwrap();
        assert!(g.is_sink(g.index_of(&s32)));
    }

    #[test]
    fn support_restriction_blocks_empty_targets() {
        let game = two_links(5);
        let br = ImprovementGraph::new(&game, 0.0, false, 1_000).unwrap();
        let imi = ImprovementGraph::new(&game, 0.0, true, 1_000).unwrap();
        let s = State::from_counts(&game, vec![5, 0]).unwrap();
        assert!(!br.is_sink(br.index_of(&s)));
        assert!(imi.is_sink(imi.index_of(&s)), "imitation cannot reach the empty link");
    }

    #[test]
    fn longest_and_shortest_paths_on_two_links() {
        // From (5,0) under best response: the only trajectory is
        // (5,0)→(4,1)→(3,2), length 2.
        let game = two_links(5);
        let g = ImprovementGraph::new(&game, 0.0, false, 1_000).unwrap();
        let idx = g.index_of(&State::from_counts(&game, vec![5, 0]).unwrap());
        assert_eq!(g.longest_path_from(idx), 2);
        assert_eq!(g.shortest_path_to_sink(idx), 2);
        assert_eq!(g.reachable_count(idx), 3);
    }

    #[test]
    fn state_space_cap_is_enforced() {
        let game = two_links(1000);
        assert!(ImprovementGraph::new(&game, 0.0, false, 10).is_err());
    }

    #[test]
    fn longest_path_handles_branching() {
        // Three identical links, 3 players, from (3,0,0): branching
        // trajectories but all reach (1,1,1); longest = shortest = 2.
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
                Affine::linear(1.0).into(),
            ],
            3,
        )
        .unwrap();
        let g = ImprovementGraph::new(&game, 0.0, false, 1_000).unwrap();
        let idx = g.index_of(&State::from_counts(&game, vec![3, 0, 0]).unwrap());
        assert_eq!(g.longest_path_from(idx), 2);
        assert_eq!(g.shortest_path_to_sink(idx), 2);
    }
}
