//! The Theorem 6 construction: tripled quadratic threshold games.
//!
//! Imitation requires someone to imitate, so single-player classes are inert
//! under imitation dynamics. Theorem 6 therefore replaces every player `i`
//! of a quadratic threshold game by three clones `i1, i2, i3` sharing the
//! strategy pair `{S_out_i, S_in_i}`, and offsets the private resource so
//! that, inductively, one clone stays on `S_out`, one stays on `S_in`, and
//! the third mirrors the original player's improvement dynamics. The key
//! invariant (proved in the paper and verified by property test here) is
//! that the three clones never all use the same strategy — so the imitation
//! options never collapse.
//!
//! With the base threshold `T_i = (3/2)·W_i` (see [`crate::threshold`]), the
//! matching offset works out as follows: with clones `i2` (on `S_in`) and
//! `j2` pinned, each pair resource `r_ij` carries a base congestion of 2 and
//! the private `r_i` a base congestion of 1 (from `i1`), so the mirroring
//! clone `i3` compares `Σ a_ij(3 + [j3 in])` against
//! `ℓ_ri(2) = 3·W_i + offset`: it prefers `S_in` iff
//! `Σ_{j3 in} a_ij < offset`. Choosing `offset = W_i/2` makes this the
//! original threshold condition `C_i^IN < W_i/2` — i.e. MaxCut local search.

use congames_model::{CongestionGame, GameError, State};

use crate::maxcut::MaxCutInstance;
use crate::threshold::build_threshold_game;

/// Build the tripled quadratic threshold game of `instance`: one class of
/// three clones per node, strategies `[S_out, S_in]` per class, and private
/// latency `ℓ_ri(x) = (3/2)W_i·x + W_i/2`.
///
/// # Errors
///
/// Propagates construction errors (none occur for valid instances).
pub fn tripled_threshold_game(instance: &MaxCutInstance) -> Result<CongestionGame, GameError> {
    build_threshold_game(instance, 3, 0.5)
}

/// The canonical initial state for the tripled game given the original
/// game's initial cut: clone 1 on `S_out`, clone 2 on `S_in`, clone 3 on the
/// original player's side (`bit i` of `cut` set = `S_in`).
///
/// # Errors
///
/// Propagates state-construction errors (none for in-range cuts).
pub fn tripled_initial_state(game: &CongestionGame, cut: u64) -> Result<State, GameError> {
    let n = game.classes().len();
    let mut counts = vec![0u64; game.num_strategies()];
    for i in 0..n {
        let side = ((cut >> i) & 1) as usize;
        counts[2 * i] += 1; // clone 1: S_out
        counts[2 * i + 1] += 1; // clone 2: S_in
        counts[2 * i + side] += 1; // clone 3: mirrors the cut
    }
    State::from_counts(game, counts)
}

/// Whether any class has all three clones on one strategy (the collapse the
/// Theorem 6 invariant rules out along improving imitation sequences).
pub fn has_collapsed_class(game: &CongestionGame, state: &State) -> bool {
    (0..game.classes().len()).any(|i| state.counts()[2 * i] == 3 || state.counts()[2 * i + 1] == 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_dynamics::sequential::sequential_imitation;
    use congames_dynamics::PivotRule;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shape_and_initial_state() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mc = MaxCutInstance::random(4, 10, &mut rng);
        let game = tripled_threshold_game(&mc).unwrap();
        assert_eq!(game.total_players(), 12);
        assert_eq!(game.classes().len(), 4);
        let s = tripled_initial_state(&game, 0b1010).unwrap();
        // Class 0 (bit 0 = 0): clone3 on out → counts (2, 1).
        assert_eq!(s.counts()[0], 2);
        assert_eq!(s.counts()[1], 1);
        // Class 1 (bit 1 = 1): counts (1, 2).
        assert_eq!(s.counts()[2], 1);
        assert_eq!(s.counts()[3], 2);
        assert!(!has_collapsed_class(&game, &s));
    }

    /// The Theorem 6 invariant: along any improving sequential-imitation
    /// sequence from a canonical start, no class ever collapses onto a
    /// single strategy.
    #[test]
    fn clones_never_collapse_along_improving_sequences() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mc = MaxCutInstance::random(5, 20, &mut rng);
            let game = tripled_threshold_game(&mc).unwrap();
            let cut = rng.gen::<u64>() & 0x1F;
            let mut state = tripled_initial_state(&game, cut).unwrap();
            // Walk improving imitation moves one at a time, checking the
            // invariant after every step.
            for _ in 0..200 {
                let before = state.clone();
                let out =
                    sequential_imitation(&game, &mut state, 0.0, 1, PivotRule::Random, &mut rng)
                        .unwrap();
                assert!(
                    !has_collapsed_class(&game, &state),
                    "collapse from {:?} (seed {seed})",
                    before.counts()
                );
                if out.converged {
                    break;
                }
            }
        }
    }

    /// The mirroring clone's incentive matches the original game: from the
    /// canonical state, an improving imitation move exists in class `i` iff
    /// flipping node `i` improves the cut.
    #[test]
    fn mirror_incentives_match_maxcut() {
        use congames_model::StrategyId;
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let mc = MaxCutInstance::random(5, 20, &mut rng);
            let game = tripled_threshold_game(&mc).unwrap();
            let cut = rng.gen::<u64>() & 0x1F;
            let state = tripled_initial_state(&game, cut).unwrap();
            for i in 0..5usize {
                let side = ((cut >> i) & 1) as u32;
                let from = StrategyId::new(2 * i as u32 + side);
                let to = StrategyId::new(2 * i as u32 + (1 - side));
                let gain =
                    state.strategy_latency(&game, from) - state.latency_after_move(&game, from, to);
                let cut_delta = mc.flip_delta(cut, i);
                assert_eq!(
                    gain > 1e-9,
                    cut_delta > 1e-9,
                    "player {i}: gain {gain}, cut Δ {cut_delta} (cut {cut:#b}, seed {seed})"
                );
            }
        }
    }
}
