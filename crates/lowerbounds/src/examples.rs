//! The paper's inline counter-example instances.

use congames_model::{Affine, CongestionGame, Constant, GameError, Monomial, State};

/// The Section 2.3 overshooting instance: two parallel links with
/// `ℓ_1(x) = c` (constant) and `ℓ_2(x) = x^d`, `n` players.
///
/// Starting with almost everyone on link 1, the *undamped* protocol's
/// expected inflow to link 2 overshoots the balanced point by a factor
/// `Θ(d)`; the elasticity-damped protocol does not. Returns the game and the
/// canonical start state with `seed_on_fast` players already on link 2 (they
/// must exist for imitation to discover it).
///
/// # Errors
///
/// Propagates construction errors (e.g. `seed_on_fast > n`).
pub fn overshooting_game(
    c: f64,
    d: u32,
    n: u64,
    seed_on_fast: u64,
) -> Result<(CongestionGame, State), GameError> {
    if seed_on_fast > n {
        return Err(GameError::InvalidParameter {
            name: "seed_on_fast",
            message: "cannot exceed the number of players",
        });
    }
    let game =
        CongestionGame::singleton(vec![Constant::new(c).into(), Monomial::new(1.0, d).into()], n)?;
    let state = State::from_counts(&game, vec![n - seed_on_fast, seed_on_fast])?;
    Ok((game, state))
}

/// The Ω(n) lower-bound instance from the end of Section 4: `n = 2m`
/// players on `m` identical linear links, with loads `(3, 1, 2, 2, …, 2)`.
///
/// The unique improving move is a player on link 1 sampling the single
/// player on link 2 — which happens with probability `O(1/n)` per round, so
/// *any* sampling protocol needs expected `Ω(n)` rounds before every player
/// is within a constant factor of the average latency.
///
/// # Errors
///
/// Fails if `m < 2`.
pub fn omega_n_game(m: usize) -> Result<(CongestionGame, State), GameError> {
    if m < 2 {
        return Err(GameError::InvalidParameter { name: "m", message: "needs at least two links" });
    }
    let game = CongestionGame::singleton(
        (0..m).map(|_| Affine::linear(1.0).into()).collect(),
        2 * m as u64,
    )?;
    let mut counts = vec![2u64; m];
    counts[0] = 3;
    counts[1] = 1;
    let state = State::from_counts(&game, counts)?;
    Ok((game, state))
}

/// A single-improver instance with a tunable gain (Theorem 4's
/// pseudopolynomial wait): two constant links `c` and `c − gain`, with one
/// player on the expensive link and `n − 1` on the cheap one.
///
/// The lone player's migration probability is `λ·gain/c` per sampled
/// cheap-side player, so the hitting time scales as `1/gain` — single steps
/// can take pseudopolynomially long.
///
/// # Errors
///
/// Fails unless `0 < gain < c` and `n ≥ 2`.
pub fn gap_game(c: f64, gain: f64, n: u64) -> Result<(CongestionGame, State), GameError> {
    if !(gain > 0.0 && gain < c) {
        return Err(GameError::InvalidParameter {
            name: "gain",
            message: "must satisfy 0 < gain < c",
        });
    }
    if n < 2 {
        return Err(GameError::InvalidParameter {
            name: "n",
            message: "needs at least two players",
        });
    }
    let game = CongestionGame::singleton(
        vec![Constant::new(c).into(), Constant::new(c - gain).into()],
        n,
    )?;
    let state = State::from_counts(&game, vec![1, n - 1])?;
    Ok((game, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::{best_deviation, StrategyId};

    #[test]
    fn overshooting_shape() {
        let (game, state) = overshooting_game(1000.0, 4, 256, 2).unwrap();
        assert_eq!(game.num_resources(), 2);
        assert_eq!(state.count(StrategyId::new(1)), 2);
        let p = game.params();
        assert!((p.d - 4.0).abs() < 1e-12);
        assert!(overshooting_game(1.0, 2, 4, 5).is_err());
    }

    #[test]
    fn omega_n_has_exactly_one_improving_move() {
        let (game, state) = omega_n_game(6).unwrap();
        assert_eq!(game.total_players(), 12);
        let dev = best_deviation(&game, &state, true).unwrap();
        // From link 0 (latency 3) to link 1 (after-move latency 2).
        assert_eq!(dev.from, StrategyId::new(0));
        assert_eq!(dev.to, StrategyId::new(1));
        assert!((dev.gain - 1.0).abs() < 1e-12);
        // No other strategy offers an improvement.
        let all = congames_dynamics::sequential::improving_deviations(&game, &state, 0.0, true);
        assert_eq!(all.len(), 1);
        assert!(omega_n_game(1).is_err());
    }

    #[test]
    fn gap_game_single_improver() {
        let (game, state) = gap_game(10.0, 0.5, 8).unwrap();
        let dev = best_deviation(&game, &state, true).unwrap();
        assert!((dev.gain - 0.5).abs() < 1e-12);
        assert_eq!(state.count(StrategyId::new(0)), 1);
        assert!(gap_game(1.0, 2.0, 8).is_err());
        assert!(gap_game(1.0, 0.5, 1).is_err());
    }
}
