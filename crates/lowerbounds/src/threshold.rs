//! Quadratic threshold games (Section 3.2).
//!
//! A threshold game gives every player `i` exactly two strategies: a private
//! resource `r_i` of fixed cost (the *threshold* `T_i`), or a shared bundle
//! `S_in_i ⊆ R_in`. In the *quadratic* variant, `R_in` holds one resource
//! `r_ij` per unordered player pair with latency `a_ij·x`, and
//! `S_in_i = {r_ij : j ≠ i}`.
//!
//! With the threshold `T_i = (3/2)·W_i` (where `W_i = Σ_j a_ij`), a player
//! prefers `S_in` exactly when its weight to the IN-side is less than half
//! its incident weight — which makes best-response dynamics *identical* to
//! MaxCut local search, with latency gains equal to half the cut
//! improvement. This is the embedding the PLS reductions of \[1\] build on.
//!
//! > Note: the paper's recap states `ℓ_ri(x) = ½·Σ a_ij·x`; with that
//! > constant the private resource always dominates and the game is inert.
//! > We use the `3/2` factor consistent with the MaxCut correspondence of
//! > \[1\] (the tripled construction in [`crate::tripled`] then re-derives its
//! > offset from first principles and verifies the Theorem 6 invariant
//! > computationally). See DESIGN.md.

use congames_model::{Affine, CongestionGame, GameError, ResourceId, State, Strategy};

use crate::maxcut::MaxCutInstance;

/// Index of the pair resource `r_ij` (with `i < j`) in the game's resource
/// list: pair resources come first (row-major upper triangle), then the `n`
/// private resources.
pub(crate) fn pair_resource(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Index of the private (threshold) resource of player `i`.
pub(crate) fn private_resource(n: usize, i: usize) -> usize {
    n * (n - 1) / 2 + i
}

/// Strategy id layout: player `i` owns strategies `2i` (= `S_out_i`, the
/// private resource) and `2i + 1` (= `S_in_i`).
pub(crate) const IN: u32 = 1;

/// Build the quadratic threshold game of `instance`: one single-player class
/// per node, strategies `[S_out, S_in]` in that order.
///
/// # Errors
///
/// Propagates construction errors (none occur for valid instances).
pub fn quadratic_threshold_game(instance: &MaxCutInstance) -> Result<CongestionGame, GameError> {
    build_threshold_game(instance, 1, 0.0)
}

/// Shared builder: `clones` players per class; the private resource gets
/// latency `T_i·x + offset_factor·W_i`.
pub(crate) fn build_threshold_game(
    instance: &MaxCutInstance,
    clones: u64,
    offset_factor: f64,
) -> Result<CongestionGame, GameError> {
    let n = instance.num_nodes();
    let mut b = CongestionGame::builder();
    // Pair resources r_ij, i < j.
    for i in 0..n {
        for j in i + 1..n {
            b.add_named_resource(
                format!("r_{i}_{j}"),
                Affine::linear(instance.weight(i, j)).into(),
            );
        }
    }
    // Private resources r_i with threshold slope 3/2·W_i.
    for i in 0..n {
        let w = instance.incident_weight(i);
        b.add_named_resource(format!("r_{i}"), Affine::new(1.5 * w, offset_factor * w).into());
    }
    for i in 0..n {
        let out = Strategy::singleton(ResourceId::new(private_resource(n, i) as u32));
        let in_resources: Vec<ResourceId> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let (a, bb) = if i < j { (i, j) } else { (j, i) };
                ResourceId::new(pair_resource(n, a, bb) as u32)
            })
            .collect();
        let s_in = Strategy::new(in_resources)?;
        b.add_class(format!("player-{i}"), clones, vec![out, s_in])?;
    }
    b.build()
}

/// The state of the quadratic threshold game corresponding to a MaxCut
/// bitmask (`bit i` set = player `i` plays `S_in`).
///
/// # Errors
///
/// Propagates state-construction errors (none for in-range cuts).
pub fn state_from_cut(game: &CongestionGame, cut: u64) -> Result<State, GameError> {
    let n = game.classes().len();
    let mut counts = vec![0u64; game.num_strategies()];
    for i in 0..n {
        let side = (cut >> i) & 1;
        counts[2 * i + side as usize] = 1;
    }
    State::from_counts(game, counts)
}

/// Recover the cut bitmask from a single-clone threshold-game state.
pub fn cut_from_state(game: &CongestionGame, state: &State) -> u64 {
    let n = game.classes().len();
    let mut cut = 0u64;
    for i in 0..n {
        if state.counts()[2 * i + IN as usize] == 1 {
            cut |= 1 << i;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use congames_model::{best_deviation, is_nash_equilibrium, StrategyId};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn resource_indexing_is_dense_and_disjoint() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                assert!(seen.insert(pair_resource(n, i, j)));
            }
        }
        for i in 0..n {
            assert!(seen.insert(private_resource(n, i)));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2 + n);
        assert_eq!(*seen.iter().max().unwrap(), n * (n - 1) / 2 + n - 1);
    }

    #[test]
    fn game_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mc = MaxCutInstance::random(4, 10, &mut rng);
        let game = quadratic_threshold_game(&mc).unwrap();
        assert_eq!(game.num_resources(), 6 + 4);
        assert_eq!(game.num_strategies(), 8);
        assert_eq!(game.classes().len(), 4);
        assert_eq!(game.total_players(), 4);
    }

    #[test]
    fn cut_state_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mc = MaxCutInstance::random(5, 10, &mut rng);
        let game = quadratic_threshold_game(&mc).unwrap();
        for cut in [0u64, 0b10101, 0b11111, 0b01010] {
            let state = state_from_cut(&game, cut).unwrap();
            assert_eq!(cut_from_state(&game, &state), cut);
        }
    }

    /// The heart of the Section 3.2 embedding: a player's best-response gain
    /// equals half the MaxCut flip improvement, for every player and cut.
    #[test]
    fn latency_gain_is_half_cut_improvement() {
        let mut rng = SmallRng::seed_from_u64(5);
        for seed in 0..5u64 {
            let mut r = SmallRng::seed_from_u64(seed);
            let mc = MaxCutInstance::random(6, 20, &mut r);
            let game = quadratic_threshold_game(&mc).unwrap();
            for _ in 0..20 {
                let cut = rng.gen::<u64>() & 0x3F;
                let state = state_from_cut(&game, cut).unwrap();
                for i in 0..6usize {
                    let side = ((cut >> i) & 1) as u32;
                    let from = StrategyId::new(2 * i as u32 + side);
                    let to = StrategyId::new(2 * i as u32 + (1 - side));
                    let gain = state.strategy_latency(&game, from)
                        - state.latency_after_move(&game, from, to);
                    let cut_delta = mc.flip_delta(cut, i);
                    assert!(
                        (gain - cut_delta / 2.0).abs() < 1e-9,
                        "player {i}, cut {cut:#b}: latency gain {gain} vs cut Δ/2 {}",
                        cut_delta / 2.0
                    );
                }
            }
        }
    }

    #[test]
    fn nash_equilibria_are_exactly_local_optima() {
        let mut r = SmallRng::seed_from_u64(6);
        let mc = MaxCutInstance::random(5, 15, &mut r);
        let game = quadratic_threshold_game(&mc).unwrap();
        for cut in 0u64..32 {
            let state = state_from_cut(&game, cut).unwrap();
            assert_eq!(
                is_nash_equilibrium(&game, &state, 0.0),
                mc.is_local_optimum(cut),
                "cut {cut:#b}"
            );
        }
    }

    #[test]
    fn best_deviation_matches_best_flip() {
        let mut r = SmallRng::seed_from_u64(7);
        let mc = MaxCutInstance::random(5, 15, &mut r);
        let game = quadratic_threshold_game(&mc).unwrap();
        let cut = 0b00110u64;
        let state = state_from_cut(&game, cut).unwrap();
        let best_flip = (0..5).map(|i| mc.flip_delta(cut, i)).fold(f64::NEG_INFINITY, f64::max);
        match best_deviation(&game, &state, false) {
            Some(dev) => assert!((dev.gain - best_flip / 2.0).abs() < 1e-9),
            None => assert!(best_flip <= 0.0),
        }
    }
}
