//! Weighted MaxCut instances and local search.
//!
//! The local-search version of MaxCut ("flip one node to the other side if
//! it increases the cut weight") is the canonical PLS-complete problem
//! behind the lower-bound constructions of Section 3.2: quadratic threshold
//! games embed it exactly (see [`crate::threshold`]).

use rand::Rng;

/// A complete weighted graph on `n` nodes for MaxCut local search.
///
/// A *cut* is a bitmask over nodes (bit set = node on the IN side); its
/// value is the total weight of edges crossing the partition.
///
/// # Example
///
/// ```
/// use congames_lowerbounds::MaxCutInstance;
/// let mc = MaxCutInstance::from_weights(3, |i, j| ((i + j) % 3 + 1) as f64);
/// let best = (0u64..8).max_by(|a, b| {
///     mc.cut_value(*a).partial_cmp(&mc.cut_value(*b)).unwrap()
/// }).unwrap();
/// assert!(mc.is_local_optimum(best));
/// ```
#[derive(Debug, Clone)]
pub struct MaxCutInstance {
    n: usize,
    /// Upper-triangular weights, `weights[idx(i,j)]` for `i < j`.
    weights: Vec<f64>,
}

impl MaxCutInstance {
    /// Build an instance from a weight function over unordered pairs
    /// (`w(i, j)` with `i < j`; weights must be non-negative and finite).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, or if a weight is negative or non-finite.
    pub fn from_weights(n: usize, mut w: impl FnMut(usize, usize) -> f64) -> Self {
        assert!(n >= 2, "MaxCut needs at least two nodes");
        assert!(n <= 64, "cuts are represented as u64 bitmasks");
        let mut weights = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                let wij = w(i, j);
                assert!(wij.is_finite() && wij >= 0.0, "weights must be finite and non-negative");
                weights.push(wij);
            }
        }
        MaxCutInstance { n, weights }
    }

    /// A random instance with integer weights in `1..=max_weight`.
    pub fn random(n: usize, max_weight: u64, rng: &mut impl Rng) -> Self {
        MaxCutInstance::from_weights(n, |_, _| rng.gen_range(1..=max_weight) as f64)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Offset of row i in the upper triangle, plus the column offset.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The weight of the unordered pair `{i, j}`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "no self-edges");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.weights[self.tri_index(a, b)]
    }

    /// Total incident weight `W_i = Σ_{j≠i} w_ij` of node `i`.
    pub fn incident_weight(&self, i: usize) -> f64 {
        (0..self.n).filter(|&j| j != i).map(|j| self.weight(i, j)).sum()
    }

    /// The cut value of the bitmask `cut`.
    pub fn cut_value(&self, cut: u64) -> f64 {
        let mut total = 0.0;
        for i in 0..self.n {
            for j in i + 1..self.n {
                if ((cut >> i) & 1) != ((cut >> j) & 1) {
                    total += self.weight(i, j);
                }
            }
        }
        total
    }

    /// The cut-value change if node `i` flips sides.
    pub fn flip_delta(&self, cut: u64, i: usize) -> f64 {
        let side_i = (cut >> i) & 1;
        let mut same = 0.0;
        let mut cross = 0.0;
        for j in 0..self.n {
            if j == i {
                continue;
            }
            if (cut >> j) & 1 == side_i {
                same += self.weight(i, j);
            } else {
                cross += self.weight(i, j);
            }
        }
        same - cross
    }

    /// Whether no single flip improves the cut (a local optimum).
    pub fn is_local_optimum(&self, cut: u64) -> bool {
        (0..self.n).all(|i| self.flip_delta(cut, i) <= 0.0)
    }

    /// Run local search from `cut`, flipping the best-improving node each
    /// step; returns `(local_optimum, steps)`.
    pub fn local_search(&self, mut cut: u64, max_steps: u64) -> (u64, u64) {
        let mut steps = 0;
        while steps < max_steps {
            let best = (0..self.n)
                .map(|i| (i, self.flip_delta(cut, i)))
                .filter(|(_, d)| *d > 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("weights are finite"));
            match best {
                Some((i, _)) => {
                    cut ^= 1 << i;
                    steps += 1;
                }
                None => break,
            }
        }
        (cut, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Triangle with weights w(0,1)=1, w(0,2)=2, w(1,2)=3.
    fn triangle() -> MaxCutInstance {
        MaxCutInstance::from_weights(3, |i, j| match (i, j) {
            (0, 1) => 1.0,
            (0, 2) => 2.0,
            (1, 2) => 3.0,
            _ => unreachable!(),
        })
    }

    #[test]
    fn cut_values() {
        let mc = triangle();
        assert_eq!(mc.cut_value(0b000), 0.0);
        assert_eq!(mc.cut_value(0b001), 3.0); // edges 0-1, 0-2 cross
        assert_eq!(mc.cut_value(0b010), 4.0); // 0-1, 1-2
        assert_eq!(mc.cut_value(0b100), 5.0); // 0-2, 1-2
        assert_eq!(mc.cut_value(0b110), 3.0); // complement of 001
        assert_eq!(mc.weight(2, 0), 2.0);
        assert_eq!(mc.incident_weight(0), 3.0);
    }

    #[test]
    fn flip_delta_matches_cut_difference() {
        let mc = triangle();
        for cut in 0u64..8 {
            for i in 0..3 {
                let flipped = cut ^ (1 << i);
                let expect = mc.cut_value(flipped) - mc.cut_value(cut);
                assert!((mc.flip_delta(cut, i) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn local_search_reaches_local_optimum() {
        let mut rng = SmallRng::seed_from_u64(1);
        for seed in 0..10u64 {
            let mut r = SmallRng::seed_from_u64(seed);
            let mc = MaxCutInstance::random(8, 50, &mut r);
            let start = rng.gen::<u64>() & 0xFF;
            let (opt, steps) = mc.local_search(start, 10_000);
            assert!(mc.is_local_optimum(opt), "not optimal after {steps} steps");
            assert!(mc.cut_value(opt) >= mc.cut_value(start) - 1e-12);
        }
    }

    #[test]
    fn local_optimum_of_triangle() {
        let mc = triangle();
        // Global max 0b100 (value 5) is locally optimal.
        assert!(mc.is_local_optimum(0b100));
        assert!(!mc.is_local_optimum(0b000));
    }

    #[test]
    fn random_instance_weights_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mc = MaxCutInstance::random(6, 10, &mut rng);
        for i in 0..6 {
            for j in i + 1..6 {
                let w = mc.weight(i, j);
                assert!((1.0..=10.0).contains(&w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_instance_rejected() {
        let _ = MaxCutInstance::from_weights(1, |_, _| 1.0);
    }
}
