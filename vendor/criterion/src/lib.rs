//! Offline, in-tree substitute for the crates.io `criterion` crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements the `criterion` API subset the benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (simple-form).
//!
//! Measurements are real but deliberately simple: each benchmark is warmed
//! up for ~20 ms, then timed in batches for ~200 ms, and the mean
//! time per iteration is printed as
//! `<group>/<id> ... <mean> ns/iter (<total iters> iters)`.
//! There is no statistical analysis, HTML report, or saved baseline — for
//! regression hunting, redirect the output and diff.
//!
//! Two environment variables support CI perf tracking:
//!
//! * `BENCH_QUICK=1` shrinks the warm-up/measure budgets to 5 ms / 50 ms
//!   (noisier, but fast enough to run on every commit), and
//! * `BENCH_JSON=<path>` additionally writes all results of the run as a
//!   machine-readable JSON file
//!   (`{"benchmarks": [{"id": …, "ns_per_iter": …, "iters": …}, …]}`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// `true` when `BENCH_QUICK` requests the shortened time budgets.
fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Wall-clock budget spent warming each benchmark up.
fn warm_up_budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(20)
    }
}

/// Wall-clock budget spent measuring each benchmark.
fn measure_budget() -> Duration {
    if quick_mode() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(200)
    }
}

/// All results of this process, for the optional `BENCH_JSON` report.
fn results() -> &'static Mutex<Vec<(String, f64, u64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64, u64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Write the collected results to the path named by `BENCH_JSON`, if set.
/// Called by [`criterion_main!`] after all groups ran; harmless to call
/// again (the file is simply rewritten).
pub fn write_json_report() {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let collected = results().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (id, ns, iters)) in collected.iter().enumerate() {
        let comma = if i + 1 < collected.len() { "," } else { "" };
        // Benchmark ids are ASCII identifiers/slashes; escape quotes and
        // backslashes anyway so the report is always valid JSON.
        let escaped = id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "    {{\"id\": \"{escaped}\", \"ns_per_iter\": {ns:.1}, \"iters\": {iters}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write BENCH_JSON to {path:?}: {e}");
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), f);
    }
}

/// A named group of benchmarks (`<group>/<id>` labels).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this runner is time-budgeted, so the
    /// requested sample count does not change the measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `<group>/<id>`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&format!("{}/{}", self.name, id), f);
    }

    /// Benchmark `f` with an input value under `<group>/<id>`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Label a benchmark of `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Label a parameter-only benchmark.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, running it repeatedly within the time budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: find a per-batch iteration count that is long enough to
        // swamp timer overhead, while learning the rough per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warm_up_budget() {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < measure_budget() {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<48} (no iterations recorded)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    println!("{label:<48} {ns:>14.1} ns/iter ({} iters)", b.iters_done);
    results().lock().unwrap_or_else(std::sync::PoisonError::into_inner).push((
        label.to_string(),
        ns,
        b.iters_done,
    ));
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target. After all groups
/// run, a JSON report is written when `BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
