//! Offline, in-tree substitute for the crates.io `criterion` crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements the `criterion` API subset the benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (simple-form).
//!
//! Measurements are real but deliberately simple: each benchmark is warmed
//! up for ~20 ms, then timed in batches for ~200 ms, and the mean
//! time per iteration is printed as
//! `<group>/<id> ... <mean> ns/iter (<total iters> iters)`.
//! There is no statistical analysis, HTML report, or saved baseline — for
//! regression hunting, redirect the output and diff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Wall-clock budget spent warming each benchmark up.
const WARM_UP: Duration = Duration::from_millis(20);
/// Wall-clock budget spent measuring each benchmark.
const MEASURE: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), f);
    }
}

/// A named group of benchmarks (`<group>/<id>` labels).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this runner is time-budgeted, so the
    /// requested sample count does not change the measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `<group>/<id>`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&format!("{}/{}", self.name, id), f);
    }

    /// Benchmark `f` with an input value under `<group>/<id>`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Label a benchmark of `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Label a parameter-only benchmark.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, running it repeatedly within the time budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: find a per-batch iteration count that is long enough to
        // swamp timer overhead, while learning the rough per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<48} (no iterations recorded)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    println!("{label:<48} {ns:>14.1} ns/iter ({} iters)", b.iters_done);
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
