//! Strategies for collections (currently: `Vec`).

use crate::{Strategy, TestRng};

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Smallest admissible size.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Largest admissible size (inclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// A strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rand::Rng::gen_range(rng.rng(), self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
