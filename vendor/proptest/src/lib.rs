//! Offline, in-tree substitute for the crates.io `proptest` crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements the `proptest` API subset used by the test suites:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   integer and float ranges, tuples of strategies, and
//!   [`collection::vec`],
//! * [`any`] (for `bool` and the primitive integers),
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! # Determinism and regression files
//!
//! Unlike upstream proptest, which seeds each run from the OS, this runner
//! is **deterministic by default**: case `i` of test `t` uses the seed
//! `mix(GLOBAL_SEED, fnv(t), i)`, so every `cargo test` invocation explores
//! the same cases. Set `PROPTEST_RNG_SEED=<u64>` to explore a different
//! universe, and `PROPTEST_CASES=<n>` to override the per-test case count.
//!
//! Failing case seeds are appended to
//! `proptest-regressions/<source file stem>.txt` (the same location
//! upstream uses) and each entry is replayed *before* the random cases on
//! every subsequent run, so a CI failure is reproducible locally by
//! committing that file. Seeds listed there are also a convenient way to
//! pin must-run cases forever.
//!
//! # Limitations
//!
//! No shrinking: a failure reports the seed that produced it instead of a
//! minimized value. Re-run with the regression entry in place and debug
//! from the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod runner;

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// The RNG handed to strategies while generating a test case.
#[derive(Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Create a generator for one test case from its case seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Access the underlying `rand` generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the string is the rendered message.
    Fail(String),
    /// `prop_assume!` rejected the generated inputs; the case is retried
    /// with fresh inputs and does not count toward the case budget.
    Reject,
}

/// Runner configuration, normally built with [`ProptestConfig::with_cases`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Upstream proptest strategies produce shrinkable value *trees*; this
/// substitute generates plain values (no shrinking — see the crate docs).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Use a generated value to pick a dependent follow-up strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for a whole primitive type.
#[derive(Debug, Clone, Default)]
pub struct AnyOf<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen(rng.rng())
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyOf(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Fail the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Fail the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn sums_commute(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::runner::run(
                &__config,
                file!(),
                stringify!($name),
                |__rng: &mut $crate::TestRng| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
