//! The deterministic case runner and its regression-file persistence.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{ProptestConfig, TestCaseError, TestRng};

/// Default universe seed; override with `PROPTEST_RNG_SEED=<u64>`.
const GLOBAL_SEED: u64 = 0xC0DE_5EED_2009_0808;

/// Maximum number of `prop_assume!` rejections tolerated per test before
/// the generator is declared unable to satisfy the assumptions.
const MAX_REJECTS: u64 = 65_536;

/// FNV-1a, used to give every test its own deterministic seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer, mixing the universe seed, test hash, and case index.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31) ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn global_seed() -> u64 {
    std::env::var("PROPTEST_RNG_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(GLOBAL_SEED)
}

fn case_budget(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(config.cases)
}

/// `proptest-regressions/<stem>.txt` next to the crate being tested.
fn regression_path(source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    Path::new(&root).join("proptest-regressions").join(format!("{stem}.txt"))
}

/// Parse the pinned/regression seeds recorded for one test.
fn regression_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() == Some(test_name) {
            if let Some(seed) = parts.next().and_then(|s| s.parse().ok()) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

/// Record a freshly failing seed (idempotent).
fn save_regression(path: &Path, test_name: &str, seed: u64) {
    if regression_seeds(path, test_name).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let mut text = fs::read_to_string(path).unwrap_or_else(|_| {
        "# Proptest regression seeds. Lines are `<test name> <u64 seed>`; each\n\
         # listed case re-runs before the random cases on every execution.\n"
            .to_string()
    });
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&format!("{test_name} {seed}\n"));
    let _ = fs::write(path, text);
}

/// Run one property test to completion, regression cases first.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case fails or when the
/// assumptions reject too many generated inputs.
pub fn run<F>(config: &ProptestConfig, source_file: &str, test_name: &str, mut test: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let path = regression_path(source_file);
    for seed in regression_seeds(&path, test_name) {
        let mut rng = TestRng::from_seed(seed);
        match test(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "[proptest] {test_name}: regression case seed={seed} failed:\n{msg}\n\
                 (recorded in {})",
                path.display()
            ),
        }
    }

    let universe = global_seed();
    let budget = case_budget(config);
    let test_hash = fnv1a(test_name);
    let mut passed: u32 = 0;
    let mut attempts: u64 = 0;
    let mut rejects: u64 = 0;
    while passed < budget {
        let seed = mix(universe, test_hash, attempts);
        attempts += 1;
        let mut rng = TestRng::from_seed(seed);
        match test(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= MAX_REJECTS,
                    "[proptest] {test_name}: gave up after {MAX_REJECTS} prop_assume! rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                save_regression(&path, test_name, seed);
                panic!(
                    "[proptest] {test_name}: case {passed} (seed={seed}, universe={universe}) \
                     failed:\n{msg}\nSeed recorded in {} for replay.",
                    path.display()
                );
            }
        }
    }
}
