//! Behavioral tests of the substitute proptest runner itself: the macro
//! front-end, determinism, and the `prop_assume!` reject path. (The
//! failure → regression-file → replay loop lives in its own binary,
//! `regression_roundtrip.rs`, because it mutates `CARGO_MANIFEST_DIR`.)

use proptest::prelude::*;
use proptest::runner;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The macro front-end compiles and runs: tuples, flat_map, vec, any.
    #[test]
    fn macro_front_end_works(
        (len, base) in (1usize..=4).prop_flat_map(|l| {
            (proptest::collection::vec(0u32..10, l..=l), 0u64..100).prop_map(move |(v, b)| {
                (v.len(), b)
            })
        }),
        flag in any::<bool>(),
    ) {
        prop_assert!((1..=4).contains(&len));
        prop_assert!(base < 100);
        let _ = flag;
    }

    /// `prop_assume!` rejections retry instead of failing.
    #[test]
    fn assume_filters_cases(x in 0u32..100) {
        prop_assume!(x % 2 == 0);
        prop_assert_eq!(x % 2, 0);
    }
}

/// One deterministic pass: the same test body observes the same generated
/// values run-to-run (the runner derives case seeds, not OS entropy).
#[test]
fn runner_is_deterministic() {
    let collect = || {
        let mut seen = Vec::new();
        runner::run(
            &ProptestConfig::with_cases(16),
            "tests/runner_behavior.rs",
            "runner_is_deterministic_inner",
            |rng| {
                seen.push(rand::Rng::gen::<u64>(rng.rng()));
                Ok(())
            },
        );
        seen
    };
    assert_eq!(collect(), collect());
}
