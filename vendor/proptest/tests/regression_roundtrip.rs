//! The failure → regression-file → replay loop, in its **own integration
//! test binary**: this is the one test that repoints `CARGO_MANIFEST_DIR`
//! (which the runner reads to locate `proptest-regressions/`), and cargo
//! integration-test binaries run as separate processes, so the mutation
//! cannot leak into any other test.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use proptest::prelude::*;
use proptest::runner;

/// Restores (or removes) `CARGO_MANIFEST_DIR` even if an assertion
/// unwinds mid-test.
struct EnvGuard {
    old: Option<String>,
    dir: PathBuf,
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.old.take() {
            Some(v) => std::env::set_var("CARGO_MANIFEST_DIR", v),
            None => std::env::remove_var("CARGO_MANIFEST_DIR"),
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn failing_seed_is_recorded_and_replayed() {
    let dir = std::env::temp_dir().join(format!("proptest-shim-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp manifest dir");
    let _guard = EnvGuard { old: std::env::var("CARGO_MANIFEST_DIR").ok(), dir: dir.clone() };
    std::env::set_var("CARGO_MANIFEST_DIR", &dir);

    let source = "tests/synthetic_failure.rs";
    let reg_file = dir.join("proptest-regressions").join("synthetic_failure.txt");

    // 1. A test that fails once a generated value crosses a threshold.
    let failing = |rng: &mut proptest::TestRng| -> Result<(), TestCaseError> {
        let x: u64 = rand::Rng::gen_range(rng.rng(), 0u64..1000);
        if x >= 500 {
            return Err(TestCaseError::Fail(format!("x = {x} crossed the threshold")));
        }
        Ok(())
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        runner::run(&ProptestConfig::with_cases(64), source, "threshold_test", failing);
    }));
    assert!(outcome.is_err(), "the failing property must panic");
    let text = std::fs::read_to_string(&reg_file).expect("regression file written");
    let seed: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("threshold_test "))
        .expect("entry for threshold_test")
        .trim()
        .parse()
        .expect("parseable seed");

    // 2. The recorded seed reproduces the failure directly.
    let mut rng = proptest::TestRng::from_seed(seed);
    assert!(matches!(failing(&mut rng), Err(TestCaseError::Fail(_))));

    // 3. On re-run the recorded case replays BEFORE any random case: an
    //    always-passing body sees the regression seed first.
    let first_seed = Cell::new(None::<u64>);
    let replayed = catch_unwind(AssertUnwindSafe(|| {
        runner::run(&ProptestConfig::with_cases(1), source, "threshold_test", |rng| {
            if first_seed.get().is_none() {
                // Recover the case seed by regenerating the draw the
                // failing body would make and checking it fails.
                let x: u64 = rand::Rng::gen_range(rng.rng(), 0u64..1000);
                first_seed.set(Some(x));
            }
            Ok(())
        });
    }));
    assert!(replayed.is_ok());
    let mut check = proptest::TestRng::from_seed(seed);
    let expected: u64 = rand::Rng::gen_range(check.rng(), 0u64..1000);
    assert_eq!(first_seed.get(), Some(expected), "regression case did not replay first");
}
