//! Offline, in-tree substitute for the crates.io `rand` crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements exactly the `rand` 0.8 API subset the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, and `gen_bool`,
//! * [`SeedableRng`] with `from_seed` and `seed_from_u64`,
//! * [`rngs::SmallRng`], here backed by xoshiro256++ (the same family the
//!   real `SmallRng` uses on 64-bit targets).
//!
//! Determinism is part of the contract: given a seed, every sequence is
//! stable across platforms and releases, because the statistical test
//! suites and the proptest regression files in this repository pin seeds.
//!
//! The generator is **not** cryptographically secure; it exists to drive
//! simulations and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u32`/`u64`s.
pub trait RngCore {
    /// Return the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution:
    /// uniform over all values for the integer types, uniform in `[0, 1)`
    /// for floats, and a fair coin for `bool`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand 0.8` does, so small seeds still produce well-mixed states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Ranges usable with [`Rng::gen_range`], producing values of type `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step; the bias is `< span / 2^64`, which is far
/// below the resolution of any statistical test in this repository).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Integer types admissible in [`Rng::gen_range`] ranges, with lossless
/// round-trips through `i128` for uniform span arithmetic.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to `i128`.
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (the value is always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }

            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        let span = (hi - lo) as u64;
        T::from_i128(lo + uniform_u64_below(rng, span) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let (lo, hi) = (lo.to_i128(), hi.to_i128());
        let span = (hi - lo) as u128 + 1;
        if span > u64::MAX as u128 {
            // Only reachable for the full 64-bit domain.
            return T::from_i128(rng.next_u64() as i128);
        }
        T::from_i128(lo + uniform_u64_below(rng, span as u64) as i128)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    ///
    /// The real `rand::rngs::SmallRng` is also xoshiro256++ on 64-bit
    /// targets, though the exact streams differ between implementations;
    /// nothing in this repository depends on matching crates.io streams,
    /// only on this crate being stable with itself.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same == 0, "distinct seeds produced colliding streams");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 7];
        for _ in 0..7_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "bucket {i} starved: {c}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) frequency {frac}");
    }

    #[test]
    fn trait_object_and_reborrow_work() {
        // The engines pass `&mut rng` down through generic fns.
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            helper(rng)
        }
        fn helper(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = takes_impl(&mut rng);
    }
}
