//! Property-based tests of the incremental per-class support index
//! (proptest): after arbitrary sequences of single moves, migration
//! batches, rejected batches, and invalidation/rebuild cycles, the index
//! must equal a from-scratch occupancy recomputation — membership,
//! sortedness, position map, and the `O(1)` totals.

use congames::model::Strategy as GameStrategy;
use congames::model::{CongestionGame, Migration, ResourceId, State, StrategyId};
use congames::Affine;
use proptest::prelude::*;

/// A random 1–2-class game over up to 6 resources, 2–4 strategies per
/// class (random non-empty resource subsets), plus consistent random
/// per-strategy counts (weights routinely produce empty strategies, so
/// supports start partial).
fn arb_game_and_counts() -> impl Strategy<Value = (CongestionGame, Vec<u64>)> {
    (2usize..=6, 1usize..=2, 2usize..=4, 1u64..40).prop_flat_map(|(m, nc, s, n)| {
        let subsets = proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0u32..m as u32, 1..=m), s..=s),
            nc..=nc,
        );
        let weights =
            proptest::collection::vec(proptest::collection::vec(0u64..=10, s..=s), nc..=nc);
        (subsets, weights).prop_map(move |(subsets, weights)| {
            let mut b = CongestionGame::builder();
            for i in 0..m {
                b.add_resource(Affine::linear(1.0 + i as f64).into());
            }
            let names = ["a", "b"];
            let mut counts = Vec::new();
            for (ci, (subs, ws)) in subsets.into_iter().zip(weights).enumerate() {
                let strategies: Vec<GameStrategy> = subs
                    .into_iter()
                    .map(|ids| {
                        GameStrategy::new(ids.into_iter().map(ResourceId::new).collect())
                            .expect("non-empty subset")
                    })
                    .collect();
                let total_w: u64 = ws.iter().sum::<u64>().max(1);
                let mut class_counts: Vec<u64> = ws.iter().map(|w| n * w / total_w).collect();
                let assigned: u64 = class_counts.iter().sum();
                class_counts[0] += n - assigned;
                b.add_class(names[ci], n, strategies).expect("non-empty class");
                counts.extend(class_counts);
            }
            (b.build().expect("valid game"), counts)
        })
    })
}

/// The reference: occupied strategies of every class, recomputed from the
/// counts, in ascending id order.
fn recomputed_occupancy(game: &CongestionGame, state: &State) -> Vec<Vec<StrategyId>> {
    game.classes()
        .iter()
        .map(|class| {
            class
                .strategy_range()
                .filter(|&s| state.count(StrategyId::new(s)) > 0)
                .map(StrategyId::new)
                .collect()
        })
        .collect()
}

fn assert_index_matches(game: &CongestionGame, state: &State) -> Result<(), TestCaseError> {
    prop_assert!(state.support_consistent(game), "index diverged from the counts");
    let expected = recomputed_occupancy(game, state);
    for (ci, exp) in expected.iter().enumerate() {
        let occ = state.occupied(game, ci).expect("index is built");
        prop_assert_eq!(occ, exp.as_slice());
        prop_assert!(occ.windows(2).all(|w| w[0] < w[1]), "class {} not sorted", ci);
        prop_assert_eq!(state.support_of_class(game, ci), exp.len());
    }
    let total: usize = expected.iter().map(Vec::len).sum();
    prop_assert_eq!(state.support_size(), total);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary single-move sequences keep the index exact.
    #[test]
    fn index_tracks_single_moves(
        (game, counts) in arb_game_and_counts(),
        moves in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
    ) {
        let mut state = State::from_counts(&game, counts).unwrap();
        state.ensure_support_index(&game);
        assert_index_matches(&game, &state)?;
        for (f, t) in moves {
            let s = game.num_strategies() as u32;
            let (f, t) = (StrategyId::new(f % s), StrategyId::new(t % s));
            if state.count(f) > 0 && game.class_of(f) == game.class_of(t) {
                state.apply_move(&game, f, t).unwrap();
                assert_index_matches(&game, &state)?;
            }
        }
        prop_assert!(state.loads_consistent(&game));
    }

    /// Arbitrary migration batches — including infeasible ones the state
    /// must reject atomically — keep the index exact.
    #[test]
    fn index_tracks_migration_batches(
        (game, counts) in arb_game_and_counts(),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u32..8, 0u32..8, 0u64..6), 1..6),
            0..12,
        ),
    ) {
        let mut state = State::from_counts(&game, counts).unwrap();
        state.ensure_support_index(&game);
        for batch in batches {
            let s = game.num_strategies() as u32;
            let migrations: Vec<Migration> = batch
                .into_iter()
                .map(|(f, t, c)| {
                    Migration::new(StrategyId::new(f % s), StrategyId::new(t % s), c)
                })
                .collect();
            // Feasible or not (rejected batches must leave the index
            // untouched), the index must match the counts afterwards.
            let _ = state.apply_migrations(&game, &migrations);
            assert_index_matches(&game, &state)?;
        }
        prop_assert!(state.loads_consistent(&game));
    }

    /// Invalidate/rebuild cycles land on the same index as incremental
    /// maintenance.
    #[test]
    fn rebuild_agrees_with_incremental_maintenance(
        (game, counts) in arb_game_and_counts(),
        moves in proptest::collection::vec((0u32..8, 0u32..8), 0..20),
    ) {
        let mut state = State::from_counts(&game, counts).unwrap();
        state.ensure_support_index(&game);
        for (f, t) in moves {
            let s = game.num_strategies() as u32;
            let (f, t) = (StrategyId::new(f % s), StrategyId::new(t % s));
            if state.count(f) > 0 && game.class_of(f) == game.class_of(t) {
                state.apply_move(&game, f, t).unwrap();
            }
        }
        let incremental = recomputed_occupancy(&game, &state);
        assert_index_matches(&game, &state)?;
        state.invalidate_support_index();
        prop_assert!(state.occupied(&game, 0).is_none());
        state.ensure_support_index(&game);
        assert_index_matches(&game, &state)?;
        for (ci, exp) in incremental.iter().enumerate() {
            prop_assert_eq!(state.occupied(&game, ci).expect("rebuilt"), exp.as_slice());
        }
    }
}
