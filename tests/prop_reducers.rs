//! Property-based tests of the streaming reducers: Welford exactness
//! against a two-pass reference, merge associativity, and agreement of the
//! block-structured merge with plain sequential absorption.

use congames::dynamics::{MinMax, QuantileSketch, Reducer, ScalarStats, Welford};
use proptest::prelude::*;

/// Two-pass reference: exact mean and Bessel-corrected variance.
fn two_pass(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var)
}

fn absorbed(xs: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &x in xs {
        w.absorb(x);
    }
    w
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming Welford must agree with the two-pass reference on random
    /// data (the whole point of the algorithm is that it does so *stably*).
    #[test]
    fn welford_matches_two_pass_reference(xs in samples()) {
        let w = absorbed(&xs);
        let (mean, var) = two_pass(&xs);
        prop_assert_eq!(w.count() as usize, xs.len());
        prop_assert!(
            (w.mean() - mean).abs() <= 1e-9 * mean.abs().max(1.0),
            "mean {} vs reference {}", w.mean(), mean
        );
        prop_assert!(
            (w.variance() - var).abs() <= 1e-6 * var.max(1.0),
            "variance {} vs reference {}", w.variance(), var
        );
    }

    /// `merge(a, merge(b, c))` and `merge(merge(a, b), c)` must agree (to
    /// floating-point tolerance — the merge tree may re-associate, which is
    /// exactly why `run_reduced` fixes the tree shape for bit-identity).
    #[test]
    fn welford_merge_is_associative(
        xs in samples(),
        cut1 in 0.0f64..1.0,
        cut2 in 0.0f64..1.0,
    ) {
        let i = (cut1 * xs.len() as f64) as usize;
        let j = i + (cut2 * (xs.len() - i) as f64) as usize;
        let (a, b, c) = (absorbed(&xs[..i]), absorbed(&xs[i..j]), absorbed(&xs[j..]));

        let mut left = a;
        left.merge(b);
        left.merge(c);

        let mut right_tail = b;
        right_tail.merge(c);
        let mut right = a;
        right.merge(right_tail);

        prop_assert_eq!(left.count(), right.count());
        let scale = left.mean().abs().max(1.0);
        prop_assert!(
            (left.mean() - right.mean()).abs() <= 1e-9 * scale,
            "means re-associate: {} vs {}", left.mean(), right.mean()
        );
        prop_assert!(
            (left.variance() - right.variance()).abs() <= 1e-6 * left.variance().max(1.0),
            "variances re-associate: {} vs {}", left.variance(), right.variance()
        );
    }

    /// Quantile-sketch merges count integers, so associativity is exact —
    /// bit for bit, whatever the split.
    #[test]
    fn quantile_sketch_merge_is_exactly_associative(
        xs in samples(),
        cut1 in 0.0f64..1.0,
        cut2 in 0.0f64..1.0,
    ) {
        let i = (cut1 * xs.len() as f64) as usize;
        let j = i + (cut2 * (xs.len() - i) as f64) as usize;
        let sketch = |part: &[f64]| {
            let mut s = QuantileSketch::default();
            for &x in part {
                s.absorb(x);
            }
            s
        };
        let (a, b, c) = (sketch(&xs[..i]), sketch(&xs[i..j]), sketch(&xs[j..]));

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right_tail = b;
        right_tail.merge(c);
        let mut right = a;
        right.merge(right_tail);
        prop_assert_eq!(&left, &right);

        let whole = sketch(&xs);
        // Split-and-merge must equal one-shot absorption, bit for bit.
        prop_assert_eq!(&left, &whole);
    }

    /// The block shape `run_reduced` uses — absorb fixed-size blocks into
    /// identity partials, merge in block order — agrees with plain
    /// sequential absorption to floating-point tolerance, and the exact
    /// components (count, min/max) agree exactly.
    #[test]
    fn blocked_reduction_matches_sequential(xs in samples(), block in 1usize..64) {
        let mut seq = ScalarStats::new();
        for &x in &xs {
            seq.absorb(x);
        }
        let mut blocked = ScalarStats::new();
        for chunk in xs.chunks(block) {
            let mut partial = blocked.identity();
            for &x in chunk {
                partial.absorb(x);
            }
            blocked.merge(partial);
        }
        prop_assert_eq!(blocked.count(), seq.count());
        prop_assert_eq!(blocked.min(), seq.min());
        prop_assert_eq!(blocked.max(), seq.max());
        prop_assert!(
            (blocked.mean() - seq.mean()).abs() <= 1e-9 * seq.mean().abs().max(1.0),
            "blocked mean {} vs sequential {}", blocked.mean(), seq.mean()
        );
    }

    /// Min/max envelopes are exact whatever the association.
    #[test]
    fn minmax_merge_is_exact(xs in samples(), cut in 0.0f64..1.0) {
        let i = (cut * xs.len() as f64) as usize;
        let envelope = |part: &[f64]| {
            let mut m = MinMax::new();
            for &x in part {
                m.absorb(x);
            }
            m
        };
        let mut merged = envelope(&xs[..i]);
        merged.merge(envelope(&xs[i..]));
        let whole = envelope(&xs);
        prop_assert_eq!(merged, whole);
    }
}
