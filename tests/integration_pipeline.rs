//! End-to-end pipeline tests: graph → path enumeration → congestion game →
//! concurrent dynamics → equilibrium checks → exact flow baselines.

use congames::dynamics::{ImitationProtocol, NuRule, Simulation, StopCondition, StopSpec};
use congames::model::{potential, ApproxEquilibrium};
use congames::network::{builders, min_potential_flow, NetworkGame};
use congames::{Affine, Constant, State, StopReason};
use rand::SeedableRng;

fn braess(n: u64) -> NetworkGame {
    let a = 10.0 / n as f64;
    let (g, s, t) = builders::braess([
        Affine::linear(a).into(),
        Constant::new(10.0).into(),
        Constant::new(10.0).into(),
        Affine::linear(a).into(),
        Constant::new(0.5).into(),
    ]);
    NetworkGame::build(g, s, t, n, 100).expect("braess builds")
}

#[test]
fn imitation_reaches_approx_equilibrium_on_braess() {
    let net = braess(2048);
    let game = net.game();
    let mut counts = vec![0u64; 3];
    counts[0] = 1536;
    counts[1] = 256;
    counts[2] = 256;
    let start = State::from_counts(game, counts).unwrap();
    let mut sim = Simulation::new(game, ImitationProtocol::paper_default().into(), start).unwrap();
    let nu = sim.params().nu;
    let eq = ApproxEquilibrium::new(0.05, 0.01, nu).unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let out = sim
        .run(
            &StopSpec::new(vec![
                StopCondition::ApproxEquilibrium(eq),
                StopCondition::MaxRounds(200_000),
            ]),
            &mut rng,
        )
        .unwrap();
    assert_eq!(out.reason, StopReason::ApproxEquilibrium);
    // The reached state's potential is sandwiched between Φ* and Φ(x0).
    let phi_star = net.min_potential().unwrap();
    assert!(sim.potential() >= phi_star - 1e-6);
    assert!(eq.is_satisfied(game, sim.state()));
    assert!(sim.state().loads_consistent(game));
}

#[test]
fn potential_never_drops_below_phi_star_along_any_run() {
    let net = braess(512);
    let game = net.game();
    let phi_star = net.min_potential().unwrap();
    let start = State::from_counts(game, vec![384, 64, 64]).unwrap();
    let mut sim = Simulation::new(game, ImitationProtocol::paper_default().into(), start).unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
    for _ in 0..500 {
        sim.step(&mut rng).unwrap();
        assert!(
            sim.potential() >= phi_star - 1e-6,
            "potential {} fell below Φ* {phi_star}",
            sim.potential()
        );
    }
    // Incremental potential still agrees with a full recomputation.
    assert!((sim.potential() - potential(game, sim.state())).abs() < 1e-6);
}

#[test]
fn flow_phi_star_is_reached_by_best_response_descent() {
    // Best-response dynamics must land exactly on a potential local minimum;
    // for the Braess family the global Φ* is reachable and unique enough
    // that descent from any start matches the flow value.
    use congames::dynamics::sequential::best_response_dynamics;
    use congames::dynamics::PivotRule;
    let net = braess(64);
    let game = net.game();
    let phi_star = net.min_potential().unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    for counts in [vec![64u64, 0, 0], vec![0, 64, 0], vec![20, 24, 20]] {
        let mut state = State::from_counts(game, counts).unwrap();
        let out =
            best_response_dynamics(game, &mut state, 0.0, 100_000, PivotRule::BestGain, &mut rng)
                .unwrap();
        assert!(out.converged);
        assert!(
            (out.potential - phi_star).abs() < 1e-6,
            "descent reached {} but Φ* = {phi_star}",
            out.potential
        );
    }
}

#[test]
fn phi_star_from_flow_matches_exhaustive_enumeration() {
    // Tiny game: enumerate every state of a 3-path Braess with 5 players.
    let net = braess(5);
    let game = net.game();
    let phi_star = net.min_potential().unwrap();
    let mut best = f64::INFINITY;
    for a in 0..=5u64 {
        for b in 0..=5 - a {
            let state = State::from_counts(game, vec![a, b, 5 - a - b]).unwrap();
            best = best.min(potential(game, &state));
        }
    }
    assert!((best - phi_star).abs() < 1e-9);
}

#[test]
fn nu_free_imitation_reaches_nash_within_support_on_parallel_links() {
    // On singleton games with full-support starts, imitation with the gain>0
    // rule ends at a state that is Nash over the support — and the support
    // never grows, so comparing against full Nash needs every link populated.
    let (g, s, t) = builders::parallel_links(4, |i| Affine::linear((i + 1) as f64).into());
    let net = NetworkGame::build(g, s, t, 400, 10).unwrap();
    let game = net.game();
    let start = State::from_counts(game, vec![100, 100, 100, 100]).unwrap();
    let proto = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
    let mut sim = Simulation::new(game, proto, start).unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
    let out = sim
        .run(
            &StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(500_000)])
                .with_check_every(4),
            &mut rng,
        )
        .unwrap();
    assert_eq!(out.reason, StopReason::ImitationStable);
    assert!(congames::model::is_nash_equilibrium(game, sim.state(), 1e-9));
}

#[test]
fn grid_network_game_runs_end_to_end() {
    let (g, s, t) =
        builders::grid(3, 3, |e| Affine::new(0.5 + (e.index() % 3) as f64 * 0.25, 1.0).into());
    let net = NetworkGame::build(g, s, t, 300, 1000).unwrap();
    assert_eq!(net.game().num_strategies(), 6);
    let start = State::all_on_first(net.game());
    let phi0 = potential(net.game(), &start);
    // Exploration (innovative) escapes the single-path start.
    let proto = congames::ExplorationProtocol::paper_default().into();
    let mut sim = Simulation::new(net.game(), proto, start).unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    for _ in 0..3000 {
        sim.step(&mut rng).unwrap();
    }
    assert!(sim.potential() < phi0);
    assert!(sim.state().support_size() > 1);
    // The flow baseline is consistent.
    let flow = min_potential_flow(net.graph(), net.source(), net.sink(), 300).unwrap();
    assert!(sim.potential() >= flow.cost - 1e-6);
}
