//! The player-level kernel's LRU-of-origin-rows μ memo.
//!
//! Classes whose dense μ table (`2·S²` slots) exceeds the memo budget used
//! to skip memoization entirely; the row scheme memoizes their occupied
//! origins instead, LRU-evicting rows when the support outgrows the pool.
//! Memoization must be *invisible*: μ is a pure function of the pre-round
//! state, so every capacity — including 0 (no memo at all) — must produce
//! bit-identical trajectories, differing only in the hit/eviction
//! counters.

use congames::dynamics::{EngineKind, ImitationProtocol, NuRule, Protocol, Simulation};
use congames::model::{Affine, CongestionGame, State};
use congames_testutil::rng::fixture_rng;

/// `S` parallel links `ℓ_i(x) = (1+i)·x`, players spread over the first
/// `support` links only.
fn sparse_game(s: usize, support: usize, n: u64) -> (CongestionGame, State) {
    let game = CongestionGame::singleton(
        (0..s).map(|i| Affine::linear(1.0 + i as f64).into()).collect(),
        n,
    )
    .expect("valid game");
    let mut counts = vec![0u64; s];
    let share = n / support as u64;
    for c in counts.iter_mut().take(support) {
        *c = share;
    }
    counts[0] += n - share * support as u64;
    let state = State::from_counts(&game, counts).expect("valid start");
    (game, state)
}

fn protocol() -> Protocol {
    ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into()
}

/// Run `rounds` player-level rounds at the given μ-memo capacity and
/// return the per-round counts plus the final memo counters.
fn run_player_level(
    game: &CongestionGame,
    start: &State,
    rounds: u64,
    capacity: Option<usize>,
    seed_label: &str,
) -> (Vec<Vec<u64>>, congames::dynamics::MuMemoStats) {
    let mut sim = Simulation::new(game, protocol(), start.clone())
        .expect("valid simulation")
        .with_engine(EngineKind::PlayerLevel);
    if let Some(cap) = capacity {
        sim = sim.with_mu_memo_capacity(cap);
    }
    let mut rng = fixture_rng(seed_label, 21);
    let mut trajectory = Vec::new();
    for _ in 0..rounds {
        sim.step(&mut rng).expect("step");
        trajectory.push(sim.state().counts().to_vec());
    }
    (trajectory, sim.mu_memo_stats())
}

/// A class with `2·S² > MU_TABLE_MAX` (S = 1088 ⇒ 2·S² ≈ 2.37M > 2²¹)
/// used to skip memoization; it must now take the LRU row path — row
/// allocations and slot hits accumulate, no eviction while the support
/// fits the pool — and stay bit-identical to the unmemoized kernel.
#[test]
fn huge_class_hits_the_lru_rows_bit_identically() {
    let (game, start) = sparse_game(1088, 6, 3000);
    let (memoized, stats) = run_player_level(&game, &start, 5, None, "mu-lru/huge");
    assert!(stats.row_allocs > 0, "huge class must claim memo rows: {stats:?}");
    assert!(stats.slot_hits > 0, "players sharing an origin must hit memoized μ: {stats:?}");
    assert!(stats.row_hits > 0, "repeat visits to an origin must reuse its row: {stats:?}");
    assert_eq!(
        stats.evictions, 0,
        "support 6 fits the default pool (2²¹/(2·1088) ≈ 963 rows): {stats:?}"
    );
    let (plain, plain_stats) = run_player_level(&game, &start, 5, Some(0), "mu-lru/huge");
    assert_eq!(plain_stats.slot_hits, 0, "capacity 0 must disable memoization");
    assert_eq!(plain_stats.row_allocs, 0);
    assert_eq!(memoized, plain, "LRU-memoized trajectory must match the unmemoized one bitwise");
    assert!(memoized.last().unwrap().iter().sum::<u64>() == 3000);
}

/// Shrinking the pool below the support forces LRU evictions — and still
/// changes nothing about the trajectory.
#[test]
fn full_pool_evicts_lru_rows_bit_identically() {
    // 8 origins all occupied; capacity 32 slots = 2 rows of 2·8 = 16.
    let (game, start) = sparse_game(8, 8, 4096);
    let (evicting, stats) = run_player_level(&game, &start, 10, Some(32), "mu-lru/evict");
    assert!(stats.evictions > 0, "a 2-row pool under 8 origins must evict: {stats:?}");
    assert!(stats.slot_hits > 0, "rows must still serve hits between evictions: {stats:?}");
    let (reference, ref_stats) = run_player_level(&game, &start, 10, None, "mu-lru/evict");
    assert_eq!(ref_stats.evictions, 0, "default pool fits all 8 origins");
    assert_eq!(evicting, reference, "evictions must not change the trajectory");
    let (plain, _) = run_player_level(&game, &start, 10, Some(0), "mu-lru/evict");
    assert_eq!(evicting, plain, "eviction path must match the unmemoized kernel bitwise");
}

/// The aggregate engine never touches the μ memo.
#[test]
fn aggregate_engine_leaves_the_memo_untouched() {
    let (game, start) = sparse_game(16, 4, 1024);
    let mut sim = Simulation::new(&game, protocol(), start).expect("valid simulation");
    let mut rng = fixture_rng("mu-lru/agg", 3);
    for _ in 0..5 {
        sim.step(&mut rng).expect("step");
    }
    assert_eq!(sim.mu_memo_stats(), congames::dynamics::MuMemoStats::default());
}
