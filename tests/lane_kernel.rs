//! Replica-major lane kernel: bit-identity property tests.
//!
//! The contract under test is absolute, not statistical: every lane of a
//! [`LaneKernel`] must realize **bit for bit** the trajectory the scalar
//! aggregate engine realizes for the same trial in counter mode. The suite
//! sweeps every supported lane width on one- and two-class fixtures,
//! re-derives the frozen `[28, 14, 8]` counter-kernel pin through the lane
//! kernel, and checks that `Ensemble::lane_width` leaves reduced sweeps
//! byte-identical for every lane width × thread count combination.

use congames::dynamics::{
    EngineKind, Ensemble, FinalSummary, ImitationProtocol, LaneKernel, MapItem, Protocol,
    RunSummary, ScalarStats, Simulation, StopCondition, StopSpec, LANE_WIDTHS,
};
use congames::model::{CongestionGame, State};
use congames::sampling::{DrawStream, RngMode};
use congames_testutil::games;
use congames_testutil::rng::fixture_seed;

/// Rounds per lockstep comparison: enough mixing that a drifting lane
/// diverges visibly, short enough to keep the width sweep fast.
const ROUNDS: u64 = 15;

/// Step every lane of a fresh kernel `ROUNDS` times and require each lane's
/// counts, potential bits, and migration tally to equal the scalar
/// counter-mode run of its trial.
fn assert_lanes_match_scalar(label: &str, game: &CongestionGame, start: &State, width: usize) {
    let base_seed = fixture_seed(label, 0);
    let protocol: Protocol = ImitationProtocol::paper_default().into();
    let mut kernel =
        LaneKernel::new(game, protocol, start, base_seed, 0, width).expect("valid lane kernel");
    for _ in 0..ROUNDS {
        kernel.step();
    }
    for lane in 0..width {
        let mut sim = Simulation::new(game, protocol, start.clone()).expect("valid simulation");
        let mut rng = DrawStream::for_trial(RngMode::Counter, base_seed, lane as u64);
        let mut migrations = 0;
        for _ in 0..ROUNDS {
            migrations = sim.step(&mut rng).expect("scalar step").migrations;
        }
        assert_eq!(
            kernel.lane_counts(lane),
            sim.state().counts(),
            "{label}: lane {lane} of {width} diverged from the scalar counts"
        );
        assert_eq!(
            kernel.lane_potential(lane).to_bits(),
            sim.potential().to_bits(),
            "{label}: lane {lane} of {width} diverged from the scalar potential bits"
        );
        assert_eq!(
            kernel.lane_migrations(lane),
            migrations,
            "{label}: lane {lane} of {width} diverged from the scalar migration count"
        );
    }
}

#[test]
fn every_lane_width_matches_scalar_on_a_single_class_fixture() {
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    for width in LANE_WIDTHS {
        assert_lanes_match_scalar("lanes/affine", &game, &start, width);
    }
}

#[test]
fn every_lane_width_matches_scalar_on_a_two_class_fixture() {
    // Two player classes over overlapping strategy sets: exercises the
    // per-class pair walk, the union origin/destination sets, and per-class
    // exploration scaling inside the lane kernel.
    let game = games::two_class_overlap(60, 40);
    let start = games::geometric_state(&game);
    for width in LANE_WIDTHS {
        assert_lanes_match_scalar("lanes/two-class", &game, &start, width);
    }
}

/// The frozen counter-kernel pin from `engine_equivalence`: trial 7 of the
/// `eq/kernel-pin` fixture reaches counts `[28, 14, 8]` after 30 rounds.
/// The lane kernel must re-derive those exact bits when trial 7 rides as
/// lane 0 of a lane group.
#[test]
fn lane_kernel_reproduces_the_pinned_counter_trajectory() {
    let game = games::linear_singleton(3, 50);
    let start = games::geometric_state(&game);
    let mut kernel = LaneKernel::new(
        &game,
        ImitationProtocol::paper_default().into(),
        &start,
        fixture_seed("eq/kernel-pin", 0),
        7,
        8,
    )
    .expect("valid lane kernel");
    for _ in 0..30 {
        kernel.step();
    }
    assert_eq!(
        kernel.lane_counts(0),
        &[28, 14, 8],
        "lane 0 (trial 7) drifted from the pinned counter trajectory"
    );
}

/// `Ensemble::lane_width` is pure scheduling: for every lane width × thread
/// count, a reduced sweep over a two-class game must produce the scalar
/// sweep's bits, and per-trial outputs must arrive in trial order.
#[test]
fn lane_ensembles_are_bit_identical_for_every_width_and_thread_count() {
    let game = games::two_class_overlap(60, 40);
    let start = games::geometric_state(&game);
    let stop = StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(40)])
        .with_check_every(4);
    let run = |lanes: Option<usize>, threads: usize| -> Vec<u64> {
        let mut e = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
            .expect("valid ensemble")
            .engine(EngineKind::Aggregate)
            .rng_mode(RngMode::Counter)
            .trials(70)
            .base_seed(fixture_seed("lanes/ensemble", 0))
            .threads(threads);
        if let Some(w) = lanes {
            e = e.lane_width(w);
        }
        e.run_reduced(
            &stop,
            |_trial| FinalSummary,
            MapItem::new(|s: RunSummary| s.potential.to_bits(), Vec::new()),
        )
        .expect("reduced run succeeds")
        .into_inner()
    };
    let scalar = run(None, 1);
    assert_eq!(scalar.len(), 70);
    for width in LANE_WIDTHS {
        for threads in [1, 2, 8] {
            assert_eq!(
                scalar,
                run(Some(width), threads),
                "lanes={width} threads={threads} changed per-trial potential bits"
            );
        }
    }
}

/// The quantile sketch path (the CLI's `--reduce quantiles`) through lanes:
/// summary statistics of a lane sweep equal the scalar sweep exactly.
#[test]
fn lane_quantile_reductions_match_scalar_bits() {
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    let stop = StopSpec::max_rounds(25);
    let run = |lanes: Option<usize>| {
        let mut e = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
            .expect("valid ensemble")
            .rng_mode(RngMode::Counter)
            .trials(80)
            .base_seed(2024)
            .threads(4);
        if let Some(w) = lanes {
            e = e.lane_width(w);
        }
        e.run_reduced(
            &stop,
            |_trial| FinalSummary,
            MapItem::new(|s: RunSummary| s.potential, ScalarStats::new()),
        )
        .expect("reduced run succeeds")
        .into_inner()
    };
    let scalar = run(None);
    for width in LANE_WIDTHS {
        assert_eq!(scalar, run(Some(width)), "lanes={width} changed the quantile sketch");
    }
}
