//! Steady-state allocation pin for the round kernels.
//!
//! The scratch-buffer engine design promises **zero heap allocations per
//! round in steady state** for both kernels: all per-round working memory
//! (CSR pair buffer, multinomial counts, μ memo, move/commit buffers,
//! the state's latency cache, migration scratch) is owned by the
//! [`Simulation`] and reused. This test installs a counting global
//! allocator, warms a simulation past its buffer high-water marks, and then
//! asserts that further rounds perform no allocation at all.
//!
//! Everything runs inside a single `#[test]` so no concurrent test can
//! perturb the global counter.

use congames::dynamics::{EngineKind, ImitationProtocol, NuRule, Protocol, Simulation};
use congames::model::{Affine, CongestionGame, State};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

// Per-thread counter so the measurement is immune to allocations the test
// harness performs concurrently on other threads (a real, observed source
// of flaky counts with a process-global counter). The `const` initializer
// keeps TLS access allocation-free; `try_with` tolerates thread teardown.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates directly to `System`, only incrementing a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations performed by the *current* thread so far.
fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Eight asymmetric linear links with a heavily skewed start: the dynamics
/// churn for a few hundred rounds before freezing, so a window placed
/// right after warm-up exercises every kernel code path (pair enumeration,
/// multinomials, the μ memo, the commit sort, migration application)
/// while buffers are already at their high-water marks — the largest
/// flows happen in the *first* rounds.
fn game() -> CongestionGame {
    CongestionGame::singleton(
        (0..8).map(|i| Affine::linear(1.0 + 0.25 * i as f64).into()).collect(),
        4096,
    )
    .expect("valid game")
}

fn skewed_start(game: &CongestionGame) -> State {
    let mut counts = vec![64u64; game.num_strategies()];
    counts[0] = 4096 - 7 * 64;
    State::from_counts(game, counts).expect("valid start")
}

fn assert_steady_state_alloc_free(
    engine: EngineKind,
    protocol: Protocol,
    label: &str,
    require_steady_migrations: bool,
) {
    let game = game();
    let mut sim = Simulation::new(&game, protocol, skewed_start(&game))
        .expect("valid simulation")
        .with_engine(engine);
    let mut rng = SmallRng::seed_from_u64(1234);
    // Warm-up: the first rounds carry the largest flows, so 50 rounds
    // drive every scratch buffer to its high-water mark.
    let mut migrated = 0u64;
    for _ in 0..50 {
        migrated += sim.step(&mut rng).expect("warm-up round").migrations;
    }
    assert!(migrated > 0, "{label}: warm-up must exercise the migration path");
    let before = allocations();
    let mut migrated = 0u64;
    for _ in 0..100 {
        migrated += sim.step(&mut rng).expect("steady-state round").migrations;
    }
    let after = allocations();
    if require_steady_migrations {
        // All positive-gain dynamics eventually freeze (the potential is a
        // supermartingale), so only configurations whose churn provably
        // outlasts the window assert ongoing migrations.
        assert!(migrated > 0, "{label}: the measured window must still migrate");
    }
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations in 100 measured rounds",
        after - before
    );
}

/// Big-flow aggregate rounds: 2¹⁶ players on 8 links, so the early rounds
/// migrate thousands of players per resource and every `ΔΦ` update walks
/// more than 10³ intermediate loads through the batched
/// `Latency::sum_range` (which must chunk through its fixed stack buffer,
/// never the heap).
fn assert_big_flow_rounds_alloc_free() {
    let game = CongestionGame::singleton(
        (0..8).map(|i| Affine::linear(1.0 + 0.25 * i as f64).into()).collect(),
        1 << 16,
    )
    .expect("valid game");
    let mut counts = vec![1024u64; 8];
    counts[0] = (1 << 16) - 7 * 1024;
    let start = State::from_counts(&game, counts).expect("valid start");
    let mut sim = Simulation::new(
        &game,
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
        start,
    )
    .expect("valid simulation")
    .with_engine(EngineKind::Aggregate);
    let mut rng = SmallRng::seed_from_u64(77);
    // Warm-up: round 1 carries the single largest flow, so two rounds put
    // every scratch buffer at its high-water mark.
    for _ in 0..2 {
        sim.step(&mut rng).expect("warm-up round");
    }
    let mut prev_loads = sim.state().loads().to_vec();
    let before = allocations();
    let mut max_delta = 0u64;
    for _ in 0..10 {
        sim.step(&mut rng).expect("big-flow round");
        for (o, &n) in prev_loads.iter_mut().zip(sim.state().loads()) {
            max_delta = max_delta.max(o.abs_diff(n));
            *o = n;
        }
    }
    let after = allocations();
    assert!(
        max_delta > 1_000,
        "big-flow window must walk >10³ intermediate loads per ΔΦ (got {max_delta})"
    );
    assert_eq!(
        after - before,
        0,
        "big-flow aggregate rounds: {} heap allocations in 10 measured rounds",
        after - before
    );
}

/// Full latency-cache rebuilds (invalidate + `ensure_latency_cache`) on a
/// warmed state: the batched per-resource pair evaluation and the
/// cleared-then-refilled cache vectors must reuse their capacity.
fn assert_cache_rebuild_alloc_free() {
    use congames::model::Monomial;
    let lats = (0..64)
        .map(|i| -> congames::model::LatencyFn {
            if i % 2 == 0 {
                Affine::linear(1.0 + i as f64).into()
            } else {
                Monomial::new(1.0 + i as f64, 2).into()
            }
        })
        .collect();
    let game = CongestionGame::singleton(lats, 4096).expect("valid game");
    let mut counts = vec![64u64; 64];
    counts[0] = 4096 - 63 * 64;
    let mut state = State::from_counts(&game, counts).expect("valid state");
    state.ensure_latency_cache(&game); // warm: allocates the tables once
    let before = allocations();
    for _ in 0..100 {
        state.invalidate_latency_cache();
        state.ensure_latency_cache(&game);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "latency-cache rebuild: {} heap allocations in 100 rebuilds",
        after - before
    );
}

/// Support-index maintenance in steady state: once
/// `ensure_support_index` has built the per-class occupied lists (full
/// class capacity reserved up front), migration batches that repeatedly
/// push strategies *out of and back into* the support — the worst case
/// for the sorted-insert maintenance — must not touch the heap.
fn assert_support_index_maintenance_alloc_free() {
    use congames::model::Migration;
    use congames::model::StrategyId;
    let game = game();
    let mut counts = vec![0u64; 8];
    counts[0] = 4096;
    let mut state = State::from_counts(&game, counts).expect("valid state");
    state.ensure_support_index(&game);
    let sid = StrategyId::new;
    // Warm-up: first batch sizes the internal outflow scratch.
    state.apply_migrations(&game, &[Migration::new(sid(0), sid(1), 8)]).expect("warm-up batch");
    let before = allocations();
    for i in 0..100u32 {
        // Occupy a rotating strategy, then drain it again: one insert and
        // one remove per batch, at shifting positions in the sorted list.
        let s = sid(2 + (i % 6));
        state
            .apply_migrations(&game, &[Migration::new(sid(0), s, 16), Migration::new(sid(1), s, 4)])
            .expect("occupy batch");
        state
            .apply_migrations(&game, &[Migration::new(s, sid(0), 16), Migration::new(s, sid(1), 4)])
            .expect("drain batch");
        assert_eq!(state.support_size(), 2, "support must be back to {{0, 1}}");
    }
    let after = allocations();
    assert!(state.support_consistent(&game));
    assert_eq!(
        after - before,
        0,
        "support-index maintenance: {} heap allocations in 200 toggling batches",
        after - before
    );
}

/// Steady-state replica-major lane rounds: once the kernel's SoA blocks,
/// union latency window, per-lane CSR pair buffers, and draw scratch have
/// hit their high-water marks, stepping 16 lockstep replicas must not
/// touch the heap — the lane kernel holds the same zero-allocation
/// contract as the scalar engines it replays, under **every** SIMD
/// dispatch arm (the vector arms share the kernel's preallocated scratch;
/// forcing an arm the CPU lacks resolves to the next-best one, so the
/// check is meaningful on any host).
fn assert_lane_rounds_alloc_free(dispatch: congames::sampling::Dispatch) {
    use congames::dynamics::LaneKernel;
    let game = game();
    let start = skewed_start(&game);
    let mut kernel = LaneKernel::new(
        &game,
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
        &start,
        20090808,
        0,
        16,
    )
    .expect("valid lane kernel")
    .with_dispatch(dispatch);
    // Warm-up: the first rounds carry the largest flows across every lane.
    for _ in 0..50 {
        kernel.step();
    }
    assert!((0..16).all(|l| kernel.lane_active(l)), "no lane may retire in this fixture");
    let before = allocations();
    for _ in 0..100 {
        kernel.step();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "lane kernel ({dispatch:?}): {} heap allocations in 100 measured lockstep rounds",
        after - before
    );
}

#[test]
fn round_kernels_do_not_allocate_in_steady_state() {
    let base = ImitationProtocol::paper_default().with_nu_rule(NuRule::None);
    let imitation: Protocol = base.into();
    let combined =
        Protocol::combined(base, congames::dynamics::ExplorationProtocol::paper_default(), 0.25)
            .expect("valid combined protocol");
    for (protocol, name, steady) in [(imitation, "imitation", true), (combined, "combined", true)] {
        assert_steady_state_alloc_free(
            EngineKind::Aggregate,
            protocol,
            &format!("aggregate/{name}"),
            steady,
        );
        assert_steady_state_alloc_free(
            EngineKind::PlayerLevel,
            protocol,
            &format!("player-level/{name}"),
            steady,
        );
    }
    // The batched-latency paths this repo's perf story now rests on:
    // big-flow ΔΦ walks and full cache rebuilds stay off the heap too.
    assert_big_flow_rounds_alloc_free();
    assert_cache_rebuild_alloc_free();
    // Incremental support-index maintenance (inserts/removes as counts
    // cross zero) is likewise allocation-free once built.
    assert_support_index_maintenance_alloc_free();
    // Replica-major lane rounds reuse the same scratch discipline, in
    // both the scalar and the vector dispatch arms.
    use congames::sampling::Dispatch;
    assert_lane_rounds_alloc_free(Dispatch::Scalar);
    assert_lane_rounds_alloc_free(Dispatch::Avx512.resolve());
}
