//! Steady-state allocation pin for the round kernels.
//!
//! The scratch-buffer engine design promises **zero heap allocations per
//! round in steady state** for both kernels: all per-round working memory
//! (CSR pair buffer, multinomial counts, μ memo, move/commit buffers,
//! the state's latency cache, migration scratch) is owned by the
//! [`Simulation`] and reused. This test installs a counting global
//! allocator, warms a simulation past its buffer high-water marks, and then
//! asserts that further rounds perform no allocation at all.
//!
//! Everything runs inside a single `#[test]` so no concurrent test can
//! perturb the global counter.

use congames::dynamics::{EngineKind, ImitationProtocol, NuRule, Protocol, Simulation};
use congames::model::{Affine, CongestionGame, State};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, only incrementing a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Eight asymmetric linear links with a heavily skewed start: the dynamics
/// churn for a few hundred rounds before freezing, so a window placed
/// right after warm-up exercises every kernel code path (pair enumeration,
/// multinomials, the μ memo, the commit sort, migration application)
/// while buffers are already at their high-water marks — the largest
/// flows happen in the *first* rounds.
fn game() -> CongestionGame {
    CongestionGame::singleton(
        (0..8).map(|i| Affine::linear(1.0 + 0.25 * i as f64).into()).collect(),
        4096,
    )
    .expect("valid game")
}

fn skewed_start(game: &CongestionGame) -> State {
    let mut counts = vec![64u64; game.num_strategies()];
    counts[0] = 4096 - 7 * 64;
    State::from_counts(game, counts).expect("valid start")
}

fn assert_steady_state_alloc_free(
    engine: EngineKind,
    protocol: Protocol,
    label: &str,
    require_steady_migrations: bool,
) {
    let game = game();
    let mut sim = Simulation::new(&game, protocol, skewed_start(&game))
        .expect("valid simulation")
        .with_engine(engine);
    let mut rng = SmallRng::seed_from_u64(1234);
    // Warm-up: the first rounds carry the largest flows, so 50 rounds
    // drive every scratch buffer to its high-water mark.
    let mut migrated = 0u64;
    for _ in 0..50 {
        migrated += sim.step(&mut rng).expect("warm-up round").migrations;
    }
    assert!(migrated > 0, "{label}: warm-up must exercise the migration path");
    let before = allocations();
    let mut migrated = 0u64;
    for _ in 0..100 {
        migrated += sim.step(&mut rng).expect("steady-state round").migrations;
    }
    let after = allocations();
    if require_steady_migrations {
        // All positive-gain dynamics eventually freeze (the potential is a
        // supermartingale), so only configurations whose churn provably
        // outlasts the window assert ongoing migrations.
        assert!(migrated > 0, "{label}: the measured window must still migrate");
    }
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations in 100 measured rounds",
        after - before
    );
}

#[test]
fn round_kernels_do_not_allocate_in_steady_state() {
    let base = ImitationProtocol::paper_default().with_nu_rule(NuRule::None);
    let imitation: Protocol = base.into();
    let combined =
        Protocol::combined(base, congames::dynamics::ExplorationProtocol::paper_default(), 0.25)
            .expect("valid combined protocol");
    for (protocol, name, steady) in [(imitation, "imitation", true), (combined, "combined", true)] {
        assert_steady_state_alloc_free(
            EngineKind::Aggregate,
            protocol,
            &format!("aggregate/{name}"),
            steady,
        );
        assert_steady_state_alloc_free(
            EngineKind::PlayerLevel,
            protocol,
            &format!("player-level/{name}"),
            steady,
        );
    }
}
