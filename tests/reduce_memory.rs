//! Capacity probe for the streamed ensemble reduction.
//!
//! The acceptance bar for `Ensemble::run_reduced` is that a 10⁵-trial
//! sweep reduces online: live memory is `O(threads · recorded_rounds)` —
//! **independent of the trial count** — because per-trial outputs are
//! absorbed into block partials as trials finish and no per-trial
//! `Trajectory`/outcome `Vec` is ever materialized. This test installs a
//! byte-accounting global allocator and compares the peak live-heap
//! growth of a 10⁴-trial sweep against a 10⁵-trial sweep: a materializing
//! implementation would peak ~10× higher, the streaming one must stay
//! flat (both sweeps also get a generous absolute cap). Everything runs
//! inside a single `#[test]` so no concurrent test perturbs the counters.

use congames::dynamics::{
    Ensemble, ImitationProtocol, PerRoundStats, RecordConfig, RecordSeries, StopSpec,
};
use congames::model::State;
use congames::{Affine, CongestionGame};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

struct AccountingAllocator;

/// Live heap bytes allocated through this allocator.
static CURRENT: AtomicI64 = AtomicI64::new(0);
/// High-water mark of `CURRENT` since the last reset.
static PEAK: AtomicI64 = AtomicI64::new(0);

fn note(current: i64) {
    PEAK.fetch_max(current, Ordering::Relaxed);
}

// SAFETY: delegates directly to `System`, only maintaining counters.
unsafe impl GlobalAlloc for AccountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            note(CURRENT.fetch_add(layout.size() as i64, Ordering::Relaxed) + layout.size() as i64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size() as i64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            let delta = new_size as i64 - layout.size() as i64;
            note(CURRENT.fetch_add(delta, Ordering::Relaxed) + delta);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: AccountingAllocator = AccountingAllocator;

/// Peak live-heap growth (bytes above the starting level) while `f` runs.
fn peak_growth(f: impl FnOnce()) -> i64 {
    let start = CURRENT.load(Ordering::Relaxed);
    PEAK.store(start, Ordering::Relaxed);
    f();
    (PEAK.load(Ordering::Relaxed) - start).max(0)
}

#[test]
fn reduced_sweep_memory_is_independent_of_trial_count() {
    let game =
        CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], 32)
            .expect("valid game");
    let start = State::from_counts(&game, vec![24, 8]).expect("valid start");
    let stop = StopSpec::max_rounds(8);
    let sweep = |trials: usize| {
        let stats = Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
            .expect("valid ensemble")
            .trials(trials)
            .base_seed(11)
            .threads(2)
            .recording(RecordConfig::every_round())
            .run_reduced(&stop, |_trial| RecordSeries::new(), PerRoundStats::new())
            .expect("reduced sweep succeeds");
        assert_eq!(stats.trials() as usize, trials);
        assert_eq!(stats.len(), 9, "rounds 0..=8 recorded");
    };
    // Warm up allocator pools and thread machinery once.
    sweep(1_000);
    let small = peak_growth(|| sweep(10_000));
    let large = peak_growth(|| sweep(100_000));
    // A materializing sweep would make `large` ≈ 10 × `small`. The
    // streamed reduction keeps live memory at the block/window scale, so
    // the peak must stay flat (slack for allocator jitter) and tiny in
    // absolute terms.
    assert!(
        large <= small.max(1) * 3 / 2 + (64 << 10),
        "peak live heap grew with the trial count: 10⁴ trials → {small} B, \
         10⁵ trials → {large} B"
    );
    assert!(
        large < (4 << 20),
        "a 10⁵-trial reduced sweep should peak well under 4 MiB, got {large} B"
    );
}
