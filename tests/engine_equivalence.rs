//! Cross-engine equivalence: the `Aggregate` engine (per-origin
//! multinomials, `O(S²)` per round) and the `PlayerLevel` engine (explicit
//! per-player iteration, `O(n)` per round) must realize **statistically
//! identical** dynamics — same per-round migration distribution, hence the
//! same distribution over trajectories.
//!
//! This suite is the correctness bedrock for every future performance PR:
//! sharding, batching, or fusing a round engine must keep these tests
//! green. It compares the two engines across game families (linear,
//! affine, and superlinear singletons; an overlapping-strategy general
//! game; the Braess network) and protocols (imitation, exploration,
//! combined), using the tolerance machinery of `congames-testutil`:
//!
//! * z-tests on mean final potential and mean average latency after a
//!   fixed number of rounds (z = 4.5 → a correct engine pair fails with
//!   probability ≈ 7e-6 per comparison), and
//! * a two-sample Kolmogorov–Smirnov test on the full final-occupancy
//!   distribution of a tracked strategy.
//!
//! Every trial seed derives from `congames_testutil::rng::fixture_rng`, so
//! failures replay exactly.

use congames::dynamics::{
    EngineKind, Ensemble, ExplorationProtocol, ImitationProtocol, Protocol, Simulation, StopSpec,
};
use congames::model::{average_latency, potential, CongestionGame, State};
use congames::sampling::RngMode;
use congames_testutil::games;
use congames_testutil::rng::{fixture_rng, fixture_stream};
use congames_testutil::sim::{
    occupancy_histogram, occupancy_histogram_mode, trial_stats, trial_stats_mode,
};
use congames_testutil::stats::{assert_means_equal, ks_distance, ks_threshold};

/// Number of independent trials per engine for the mean comparisons.
const TRIALS: u64 = 256;
/// Rounds simulated per trial: enough mixing to leave the start state's
/// neighborhood, short enough that distributions retain spread.
const ROUNDS: u64 = 12;
/// z tolerance for mean comparisons (two-sided ≈ 7e-6 false-failure rate).
const Z: f64 = 4.5;

fn potential_stat(game: &CongestionGame, state: &State) -> f64 {
    potential(game, state)
}

fn latency_stat(game: &CongestionGame, state: &State) -> f64 {
    average_latency(game, state)
}

/// Compare both engines on one `(game, start, protocol)` configuration.
fn assert_engines_agree(label: &str, game: &CongestionGame, start: &State, protocol: Protocol) {
    let stats: [(&str, congames_testutil::sim::StateStat); 2] =
        [("potential", potential_stat), ("avg_latency", latency_stat)];
    for (stat_name, stat) in stats {
        let agg = trial_stats(
            &format!("{label}/agg"),
            game,
            protocol,
            start,
            EngineKind::Aggregate,
            ROUNDS,
            TRIALS,
            stat,
        );
        let player = trial_stats(
            &format!("{label}/player"),
            game,
            protocol,
            start,
            EngineKind::PlayerLevel,
            ROUNDS,
            TRIALS,
            stat,
        );
        // Relative floor: protects the comparison when both engines have
        // essentially converged and the sample variance is ~0.
        let scale = agg.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        assert_means_equal(
            &agg,
            &player,
            Z,
            1e-9 * scale,
            &format!("{label}: {stat_name} after {ROUNDS} rounds"),
        );
    }
}

/// KS comparison of the final-occupancy distribution of strategy 0.
fn assert_occupancy_distributions_agree(
    label: &str,
    game: &CongestionGame,
    start: &State,
    protocol: Protocol,
) {
    let trials = 400u64;
    let agg = occupancy_histogram(
        &format!("{label}/occ-agg"),
        game,
        protocol,
        start,
        EngineKind::Aggregate,
        ROUNDS,
        trials,
        0,
    );
    let player = occupancy_histogram(
        &format!("{label}/occ-player"),
        game,
        protocol,
        start,
        EngineKind::PlayerLevel,
        ROUNDS,
        trials,
        0,
    );
    let d = ks_distance(&agg, &player);
    let thresh = ks_threshold(trials as usize, trials as usize, 1e-4);
    assert!(
        d <= thresh,
        "{label}: occupancy KS distance {d:.4} exceeds {thresh:.4} over {trials} trials"
    );
}

#[test]
fn linear_singleton_imitation() {
    let game = games::linear_singleton(4, 200);
    let start = games::geometric_state(&game);
    assert_engines_agree(
        "eq/linear-imit",
        &game,
        &start,
        ImitationProtocol::paper_default().into(),
    );
}

#[test]
fn linear_singleton_exploration() {
    let game = games::linear_singleton(4, 200);
    let start = games::geometric_state(&game);
    assert_engines_agree(
        "eq/linear-expl",
        &game,
        &start,
        ExplorationProtocol::paper_default().into(),
    );
}

#[test]
fn affine_singleton_combined_protocol() {
    let game = games::affine_singleton(150);
    let start = games::geometric_state(&game);
    assert_engines_agree("eq/affine-comb", &game, &start, Protocol::combined_default());
}

#[test]
fn monomial_singleton_imitation() {
    let game = games::monomial_singleton(120);
    let start = games::geometric_state(&game);
    assert_engines_agree(
        "eq/monomial-imit",
        &game,
        &start,
        ImitationProtocol::paper_default().into(),
    );
}

#[test]
fn overlapping_general_game_imitation() {
    let game = games::overlapping_pairs(100);
    let start = games::geometric_state(&game);
    assert_engines_agree(
        "eq/overlap-imit",
        &game,
        &start,
        ImitationProtocol::paper_default().into(),
    );
}

#[test]
fn braess_network_imitation() {
    let net = games::braess_network(128);
    let start = games::geometric_state(net.game());
    assert_engines_agree(
        "eq/braess-imit",
        net.game(),
        &start,
        ImitationProtocol::paper_default().into(),
    );
}

#[test]
fn braess_network_combined_protocol() {
    let net = games::braess_network(128);
    let start = games::geometric_state(net.game());
    assert_engines_agree("eq/braess-comb", net.game(), &start, Protocol::combined_default());
}

#[test]
fn occupancy_distribution_linear_singleton() {
    let game = games::linear_singleton(3, 60);
    let start = games::geometric_state(&game);
    assert_occupancy_distributions_agree(
        "eq/occ-linear",
        &game,
        &start,
        ImitationProtocol::paper_default().into(),
    );
}

#[test]
fn occupancy_distribution_braess() {
    let net = games::braess_network(60);
    let start = games::geometric_state(net.game());
    assert_occupancy_distributions_agree(
        "eq/occ-braess",
        net.game(),
        &start,
        ImitationProtocol::paper_default().into(),
    );
}

/// Both engines are individually deterministic given a seed: replaying the
/// same fixture stream must reproduce the trajectory bit-for-bit.
#[test]
fn engines_replay_deterministically() {
    let game = games::affine_singleton(90);
    let start = games::geometric_state(&game);
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let run = |label: &str| -> Vec<Vec<u64>> {
            let mut sim =
                Simulation::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                    .expect("valid simulation")
                    .with_engine(engine);
            let mut rng = fixture_rng(label, 0);
            (0..20)
                .map(|_| {
                    sim.step(&mut rng).expect("step");
                    sim.state().counts().to_vec()
                })
                .collect()
        };
        assert_eq!(run("eq/replay"), run("eq/replay"), "{engine:?} diverged under replay");
    }
}

/// The multi-class case: two classes sharing resources, Combined protocol
/// with virtual agents (Section 6, options 2+3 together). Imitation samples
/// within a class only; the aggregate and player-level kernels must still
/// realize identical statistics.
#[test]
fn two_class_combined_with_virtual_agents() {
    let game = games::two_class_overlap(80, 60);
    let imitation = ImitationProtocol::paper_default().with_virtual_agents(true);
    let protocol = Protocol::combined(imitation, ExplorationProtocol::paper_default(), 0.5)
        .expect("valid combined protocol");
    let start = games::geometric_state(&game).with_virtual_agents(&game);
    assert_engines_agree("eq/two-class-virtual", &game, &start, protocol);
}

/// Ensemble output must be **bit-identical** for any thread count: replica
/// seeds derive from `(base_seed, trial)` and never from scheduling.
#[test]
fn ensemble_identical_across_thread_counts() {
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let run = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid ensemble")
                .engine(engine)
                .trials(16)
                .base_seed(2024)
                .threads(threads)
                .run_with(&StopSpec::max_rounds(25), |sim, out| {
                    (out.rounds, out.potential.to_bits(), sim.state().counts().to_vec())
                })
                .expect("ensemble run succeeds")
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(
                reference,
                run(threads),
                "{engine:?}: ensemble output changed with {threads} threads"
            );
        }
    }
}

/// The streamed reduction pin (the `run_reduced` sibling of the outcome
/// pin above): per-round Welford/min-max tables and the stop-reason
/// histogram must come out **bit-identical** for thread counts 1/2/8.
/// The block-structured reduction tree depends only on the trial count,
/// so 80 trials (3 reduction blocks) exercise both absorb and merge.
#[test]
fn reduced_ensemble_identical_across_thread_counts() {
    use congames::dynamics::{
        ConvergenceHistogram, FinalSummary, PerRoundStats, RecordConfig, RecordSeries,
    };
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let per_round = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid ensemble")
                .engine(engine)
                .trials(80)
                .base_seed(2024)
                .threads(threads)
                .recording(RecordConfig::every_round())
                .run_reduced(
                    &StopSpec::max_rounds(25),
                    |_trial| RecordSeries::new(),
                    PerRoundStats::new(),
                )
                .expect("reduced ensemble run succeeds")
        };
        let histogram = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid ensemble")
                .engine(engine)
                .trials(80)
                .base_seed(2024)
                .threads(threads)
                .run_reduced(
                    &StopSpec::max_rounds(25),
                    |_trial| FinalSummary,
                    ConvergenceHistogram::new(),
                )
                .expect("reduced ensemble run succeeds")
        };
        let stats_reference = per_round(1);
        assert_eq!(stats_reference.trials(), 80);
        assert_eq!(stats_reference.len(), 26, "rounds 0..=25 recorded");
        let hist_reference = histogram(1);
        assert_eq!(hist_reference.total(), 80);
        for threads in [2, 8] {
            assert_eq!(
                stats_reference,
                per_round(threads),
                "{engine:?}: reduced per-round stats changed with {threads} threads"
            );
            assert_eq!(
                hist_reference,
                histogram(threads),
                "{engine:?}: convergence histogram changed with {threads} threads"
            );
        }
    }
}

/// The multi-process acceptance anchor: splitting a fixed-seed sweep into
/// any number of shards, carrying each shard's reduction-tree leaves
/// through the wire encoding (encode → bytes → decode), and merging in
/// shard order must be **byte-identical** to single-process `run_reduced`
/// — for both engines and every shard count. This is the property the
/// `congames shard`/`congames merge` pair is built on.
#[test]
fn sharded_wire_merge_identical_to_single_process_run_reduced() {
    use congames::dynamics::wire::{
        decode_shard_file, encode_shard_file, validate_shard_sequence, ShardHeader, WireReduce,
    };
    use congames::dynamics::{
        merge_partials, ConvergenceHistogram, FinalSummary, MapItem, ScalarStats,
    };
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    let stop = StopSpec::max_rounds(25);
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let ensemble = || {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid ensemble")
                .engine(engine)
                .trials(80)
                .base_seed(2024)
                .threads(2)
        };
        let scalar =
            || MapItem::new(|s: congames::dynamics::RunSummary| s.potential, ScalarStats::new());
        let single_scalar = ensemble()
            .run_reduced(&stop, |_t| FinalSummary, scalar())
            .expect("single-process run succeeds");
        let single_hist = ensemble()
            .run_reduced(&stop, |_t| FinalSummary, ConvergenceHistogram::new())
            .expect("single-process run succeeds");
        // 80 trials = 3 blocks; 1 shard (degenerate), 2 (uneven), 3 (one
        // block each), and 7 (more shards than blocks → empty shards).
        for num_shards in [1usize, 2, 3, 7] {
            let mut files = Vec::new();
            let mut hist_files = Vec::new();
            for shard in 0..num_shards {
                let e = ensemble();
                let range = e.shard_trials(shard, num_shards);
                let header = |reducer_id: String| ShardHeader {
                    base_seed: 2024,
                    trials: 80,
                    trial_lo: range.start as u64,
                    trial_hi: range.end as u64,
                    shard: shard as u32,
                    num_shards: num_shards as u32,
                    rng_mode: RngMode::Xoshiro,
                    reducer_id,
                    config: format!("engine={engine:?}"),
                };
                let blocks = e
                    .run_reduced_shard(shard, num_shards, &stop, |_t| FinalSummary, &scalar())
                    .expect("shard run succeeds");
                files.push(encode_shard_file(&header(scalar().wire_id()), &blocks));
                let blocks = e
                    .run_reduced_shard(
                        shard,
                        num_shards,
                        &stop,
                        |_t| FinalSummary,
                        &ConvergenceHistogram::new(),
                    )
                    .expect("shard run succeeds");
                hist_files.push(encode_shard_file(
                    &header(ConvergenceHistogram::new().wire_id()),
                    &blocks,
                ));
            }
            // Replay the merge exactly as `congames merge` does: validate
            // the headers, decode every shard's leaves, fold in order.
            let mut headers = Vec::new();
            let mut leaves = Vec::new();
            for bytes in &files {
                let (h, blocks) = decode_shard_file(&scalar(), bytes).expect("shard file decodes");
                headers.push(h);
                leaves.extend(blocks);
            }
            validate_shard_sequence(&headers).expect("shard sequence validates");
            let merged = merge_partials(scalar(), leaves);
            assert_eq!(
                merged.inner(),
                single_scalar.inner(),
                "{engine:?}: {num_shards}-shard wire merge changed the scalar reduction bits"
            );
            let mut leaves = Vec::new();
            for bytes in &hist_files {
                let (_, blocks) = decode_shard_file(&ConvergenceHistogram::new(), bytes)
                    .expect("shard file decodes");
                leaves.extend(blocks);
            }
            let merged = merge_partials(ConvergenceHistogram::new(), leaves);
            assert_eq!(
                merged, single_hist,
                "{engine:?}: {num_shards}-shard wire merge changed the histogram"
            );
        }
    }
}

/// Fixed-seed determinism pin for the zero-allocation kernels: the exact
/// trajectory of a pinned `(game, seed)` pair. This is intentionally
/// brittle — any change to the kernels' RNG consumption or decision order
/// shows up here first. Re-pin the constants (and say so in the changelog)
/// when such a change is *intended*; a surprise failure means
/// nondeterminism crept in.
#[test]
fn kernel_streams_are_pinned() {
    let game = games::linear_singleton(3, 50);
    let start = games::geometric_state(&game);
    let run = |engine: EngineKind| -> Vec<u64> {
        let mut sim =
            Simulation::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid simulation")
                .with_engine(engine);
        let mut rng = fixture_rng("eq/kernel-pin", 7);
        for _ in 0..30 {
            sim.step(&mut rng).expect("step");
        }
        sim.state().counts().to_vec()
    };
    let aggregate = run(EngineKind::Aggregate);
    let player = run(EngineKind::PlayerLevel);
    assert_eq!(aggregate.iter().sum::<u64>(), 50);
    assert_eq!(player.iter().sum::<u64>(), 50);
    // Pinned expected trajectories (see the doc comment for re-pinning).
    assert_eq!(aggregate, run(EngineKind::Aggregate), "aggregate kernel must replay exactly");
    assert_eq!(player, run(EngineKind::PlayerLevel), "player kernel must replay exactly");
    let pinned_aggregate: &[u64] = &[29, 13, 8];
    let pinned_player: &[u64] = &[29, 13, 8];
    assert_eq!(
        aggregate, pinned_aggregate,
        "aggregate kernel stream drifted from the pinned trajectory"
    );
    assert_eq!(
        player, pinned_player,
        "player-level kernel stream drifted from the pinned trajectory"
    );
}

/// Big-flow pin for the batched latency paths: with 10⁵ players on three
/// skewed linear links, the first aggregate rounds migrate >10³ players
/// per resource, so every `ΔΦ` update walks >10³ intermediate loads
/// through one `Latency::sum_range` call. Pins the exact per-round counts
/// **and the bit pattern of every potential** — the batched evaluation
/// layer must keep both unchanged (same re-pinning rules as
/// [`kernel_streams_are_pinned`]).
#[test]
fn big_flow_aggregate_stream_and_potentials_pinned() {
    let game = games::linear_singleton(3, 100_000);
    let start = games::geometric_state(&game);
    let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), start)
        .expect("valid simulation")
        .with_engine(EngineKind::Aggregate);
    let mut rng = fixture_rng("eq/big-flow", 11);
    assert_eq!(
        sim.potential().to_bits(),
        0x41e4f48fa3000000,
        "initial potential (batched full evaluation) drifted"
    );
    let mut prev_loads = sim.state().loads().to_vec();
    let mut counts = Vec::new();
    let mut potentials = Vec::new();
    for round in 0..3 {
        sim.step(&mut rng).expect("step");
        let max_delta = prev_loads
            .iter()
            .zip(sim.state().loads())
            .map(|(&o, &n)| o.abs_diff(n))
            .max()
            .expect("non-empty loads");
        assert!(
            max_delta > 1_000,
            "round {round}: the big-flow fixture must walk >10³ loads per ΔΦ (got {max_delta})"
        );
        prev_loads.copy_from_slice(sim.state().loads());
        counts.push(sim.state().counts().to_vec());
        potentials.push(sim.potential().to_bits());
    }
    assert_eq!(
        counts,
        vec![vec![60921, 25568, 13511], vec![59621, 26008, 14371], vec![58557, 26357, 15086]],
        "big-flow aggregate kernel stream drifted from the pinned trajectory"
    );
    assert_eq!(
        potentials,
        vec![0x41e4bcbb05200000, 0x41e4972cc3200000, 0x41e47e603b800000],
        "recorded potentials drifted — the batched ΔΦ path changed a bit"
    );
}

/// Incremental `ΔΦ` (batched `sum_range` walks per changed resource) vs a
/// from-scratch `potential` recomputation over 10³ rounds — **exact**
/// equality, not tolerance. The fixture's integer-slope linear latencies
/// make every latency, window sum, and closed-form value an exactly
/// representable integer, so the incremental and the batch-recomputed
/// potential must agree to the last bit on every single round; any
/// deviation means the two paths compute different sums.
#[test]
fn incremental_potential_has_zero_drift_over_1000_rounds() {
    let game = games::linear_singleton(4, 500);
    let start = games::geometric_state(&game);
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let mut sim =
            Simulation::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid simulation")
                .with_engine(engine);
        let mut rng = fixture_rng("eq/drift", 3);
        for round in 0..1_000 {
            sim.step(&mut rng).expect("step");
            let exact = potential(&game, sim.state());
            assert_eq!(
                sim.potential().to_bits(),
                exact.to_bits(),
                "{engine:?}: incremental potential drifted from {exact} at round {round}"
            );
        }
    }
}

/// The start states themselves are engine-independent fixtures; pin their
/// shape so drift in the fixtures cannot masquerade as engine agreement.
#[test]
fn fixture_states_are_stable() {
    let game = games::linear_singleton(4, 200);
    let start = games::geometric_state(&game);
    // 200 players at geometric weights 2^-1.. = 100, 50, 25, 12; the
    // 13-player remainder lands on the first strategy.
    assert_eq!(start.counts(), &[113, 50, 25, 12]);
    let net = games::braess_network(128);
    let start = games::geometric_state(net.game());
    assert_eq!(start.counts().iter().sum::<u64>(), 128);
    assert!(start.counts().iter().all(|&c| c > 0));
}

/// Counter-mode sibling of [`kernel_streams_are_pinned`]: the exact
/// trajectory both kernels realize when drawing from the Philox stream
/// addressed by `(trial, round, site, index)`. Same re-pinning rules — a
/// surprise failure means the counter key schedule or a kernel's draw
/// addressing changed.
#[test]
fn counter_kernel_streams_are_pinned() {
    let game = games::linear_singleton(3, 50);
    let start = games::geometric_state(&game);
    let run = |engine: EngineKind| -> Vec<u64> {
        let mut sim =
            Simulation::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid simulation")
                .with_engine(engine);
        let mut rng = fixture_stream("eq/kernel-pin", RngMode::Counter, 7);
        for _ in 0..30 {
            sim.step(&mut rng).expect("step");
        }
        sim.state().counts().to_vec()
    };
    let aggregate = run(EngineKind::Aggregate);
    let player = run(EngineKind::PlayerLevel);
    assert_eq!(aggregate.iter().sum::<u64>(), 50);
    assert_eq!(player.iter().sum::<u64>(), 50);
    assert_eq!(aggregate, run(EngineKind::Aggregate), "aggregate kernel must replay exactly");
    assert_eq!(player, run(EngineKind::PlayerLevel), "player kernel must replay exactly");
    let pinned_aggregate: &[u64] = &[28, 14, 8];
    let pinned_player: &[u64] = &[28, 14, 8];
    assert_eq!(
        aggregate, pinned_aggregate,
        "counter-mode aggregate kernel stream drifted from the pinned trajectory"
    );
    assert_eq!(
        player, pinned_player,
        "counter-mode player kernel stream drifted from the pinned trajectory"
    );
}

/// Counter-mode ensembles must be bit-identical across thread counts
/// 1/2/8 (same guarantee as the xoshiro pin above — here it holds by
/// construction, since every draw is position-addressed) *and* match a
/// frozen trajectory pin.
#[test]
fn counter_ensemble_identical_across_thread_counts() {
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let run = |threads: usize| {
            Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
                .expect("valid ensemble")
                .engine(engine)
                .rng_mode(RngMode::Counter)
                .trials(16)
                .base_seed(2024)
                .threads(threads)
                .run_with(&StopSpec::max_rounds(25), |sim, out| {
                    (out.rounds, out.potential.to_bits(), sim.state().counts().to_vec())
                })
                .expect("ensemble run succeeds")
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(
                reference,
                run(threads),
                "{engine:?}: counter-mode ensemble output changed with {threads} threads"
            );
        }
        // Fresh counter-mode pins: trial 0 and trial 15 of the
        // single-thread reference (full counts vector + potential bits).
        let pin: &[(usize, u64, u64, &[u64])] = match engine {
            EngineKind::Aggregate => &[
                (0, 25, 0x40ae_5000_0000_0000, &[58, 29, 19, 14]),
                (15, 25, 0x40ae_5000_0000_0000, &[57, 30, 19, 14]),
            ],
            EngineKind::PlayerLevel => &[
                (0, 25, 0x40ae_5000_0000_0000, &[58, 29, 19, 14]),
                (15, 25, 0x40ae_5200_0000_0000, &[58, 28, 20, 14]),
            ],
        };
        for &(trial, rounds, pot_bits, counts) in pin {
            assert_eq!(
                reference[trial],
                (rounds, pot_bits, counts.to_vec()),
                "{engine:?}: counter-mode trial {trial} drifted from the pinned trajectory"
            );
        }
    }
}

/// Counter-mode sharded wire merge: shard counts 1 and 3 must reproduce
/// the single-process `run_reduced` bits, and the merged mean is pinned.
#[test]
fn counter_sharded_merge_identical_and_pinned() {
    use congames::dynamics::wire::{decode_shard_file, encode_shard_file, ShardHeader, WireReduce};
    use congames::dynamics::{merge_partials, FinalSummary, MapItem, ScalarStats};
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    let stop = StopSpec::max_rounds(25);
    let ensemble = || {
        Ensemble::new(&game, ImitationProtocol::paper_default().into(), start.clone())
            .expect("valid ensemble")
            .engine(EngineKind::Aggregate)
            .rng_mode(RngMode::Counter)
            .trials(80)
            .base_seed(2024)
            .threads(2)
    };
    let scalar =
        || MapItem::new(|s: congames::dynamics::RunSummary| s.potential, ScalarStats::new());
    let single = ensemble()
        .run_reduced(&stop, |_t| FinalSummary, scalar())
        .expect("single-process run succeeds");
    for num_shards in [1usize, 3] {
        let mut leaves = Vec::new();
        for shard in 0..num_shards {
            let e = ensemble();
            let range = e.shard_trials(shard, num_shards);
            let header = ShardHeader {
                base_seed: 2024,
                trials: 80,
                trial_lo: range.start as u64,
                trial_hi: range.end as u64,
                shard: shard as u32,
                num_shards: num_shards as u32,
                rng_mode: RngMode::Counter,
                reducer_id: scalar().wire_id(),
                config: "counter-pin".into(),
            };
            let blocks = e
                .run_reduced_shard(shard, num_shards, &stop, |_t| FinalSummary, &scalar())
                .expect("shard run succeeds");
            let bytes = encode_shard_file(&header, &blocks);
            let (h, blocks) = decode_shard_file(&scalar(), &bytes).expect("shard file decodes");
            assert_eq!(h.rng_mode, RngMode::Counter, "rng mode must survive the wire");
            leaves.extend(blocks);
        }
        let merged = merge_partials(scalar(), leaves);
        assert_eq!(
            merged.inner(),
            single.inner(),
            "{num_shards}-shard counter-mode wire merge changed the reduction bits"
        );
    }
    // Fresh pin of the merged mean's bit pattern.
    assert_eq!(
        single.inner().mean().to_bits(),
        0x40ae_5253_3333_3333,
        "counter-mode merged mean drifted"
    );
}

/// Mixed-mode shard sets must be rejected with a precise per-file error —
/// the `congames merge` negative path.
#[test]
fn mixed_rng_mode_shard_sets_are_rejected() {
    use congames::dynamics::wire::{validate_shard_sequence, ShardHeader, WireError};
    let header = |shard: u32, rng_mode: RngMode| ShardHeader {
        base_seed: 2024,
        trials: 64,
        trial_lo: u64::from(shard) * 32,
        trial_hi: u64::from(shard + 1) * 32,
        shard,
        num_shards: 2,
        rng_mode,
        reducer_id: "welford".into(),
        config: "mixed-mode-test".into(),
    };
    let headers = vec![header(0, RngMode::Xoshiro), header(1, RngMode::Counter)];
    let err = validate_shard_sequence(&headers).expect_err("mixed modes must not merge");
    assert_eq!(
        err,
        WireError::RngModeMismatch {
            shard: 1,
            expected: RngMode::Xoshiro,
            found: RngMode::Counter
        }
    );
    // The message names the offending shard and both modes.
    let msg = err.to_string();
    assert!(msg.contains("shard 1"), "{msg}");
    assert!(msg.contains("counter") && msg.contains("xoshiro"), "{msg}");
    // Same-mode counter sets stay mergeable.
    let ok = vec![header(0, RngMode::Counter), header(1, RngMode::Counter)];
    validate_shard_sequence(&ok).expect("uniform counter-mode shards merge");
}

/// Cross-backend statistical equivalence on the engine-equivalence
/// fixtures: for each engine, xoshiro-mode and counter-mode trial
/// populations must agree in mean final potential / average latency
/// (Welch z at Z = 4.5) and in the full final-occupancy distribution (KS).
#[test]
fn counter_and_xoshiro_modes_statistically_equivalent() {
    let game = games::linear_singleton(4, 200);
    let start = games::geometric_state(&game);
    let protocol: Protocol = ImitationProtocol::paper_default().into();
    let stats: [(&str, congames_testutil::sim::StateStat); 2] =
        [("potential", potential_stat), ("avg_latency", latency_stat)];
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        for (stat_name, stat) in stats {
            let xoshiro = trial_stats_mode(
                "eq/mode-z",
                RngMode::Xoshiro,
                &game,
                protocol,
                &start,
                engine,
                ROUNDS,
                TRIALS,
                stat,
            );
            let counter = trial_stats_mode(
                "eq/mode-z",
                RngMode::Counter,
                &game,
                protocol,
                &start,
                engine,
                ROUNDS,
                TRIALS,
                stat,
            );
            let scale = xoshiro.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
            assert_means_equal(
                &xoshiro,
                &counter,
                Z,
                1e-9 * scale,
                &format!("{engine:?}: xoshiro vs counter {stat_name} after {ROUNDS} rounds"),
            );
        }
    }
    // KS on the strategy-0 occupancy distribution (smaller fixture, more
    // trials, aggregate engine).
    let game = games::linear_singleton(3, 60);
    let start = games::geometric_state(&game);
    let trials = 400u64;
    let xoshiro = occupancy_histogram_mode(
        "eq/mode-ks",
        RngMode::Xoshiro,
        &game,
        protocol,
        &start,
        EngineKind::Aggregate,
        ROUNDS,
        trials,
        0,
    );
    let counter = occupancy_histogram_mode(
        "eq/mode-ks",
        RngMode::Counter,
        &game,
        protocol,
        &start,
        EngineKind::Aggregate,
        ROUNDS,
        trials,
        0,
    );
    let d = ks_distance(&xoshiro, &counter);
    let thresh = ks_threshold(trials as usize, trials as usize, 1e-4);
    assert!(
        d <= thresh,
        "xoshiro vs counter occupancy KS distance {d:.4} exceeds {thresh:.4} over {trials} trials"
    );
}
