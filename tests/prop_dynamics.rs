//! Property-based tests of the dynamics layer: protocol probabilities,
//! engine conservation laws, and flow optimality.

use congames::dynamics::{
    EngineKind, ExplorationProtocol, ImitationProtocol, NuRule, Protocol, Simulation,
};
use congames::model::State;
use congames::network::{builders, min_potential_flow, NetworkGame};
use congames::Affine;
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_singleton() -> impl Strategy<Value = (congames::CongestionGame, Vec<u64>)> {
    (2usize..=5, 2u64..=60).prop_flat_map(|(m, n)| {
        let coeffs = proptest::collection::vec(1u32..=5, m..=m);
        let weights = proptest::collection::vec(1u64..=9, m..=m);
        (coeffs, weights).prop_map(move |(coeffs, weights)| {
            let game = congames::CongestionGame::singleton(
                coeffs.iter().map(|&a| Affine::linear(a as f64).into()).collect(),
                n,
            )
            .expect("valid singleton");
            let tw: u64 = weights.iter().sum();
            let mut counts: Vec<u64> = weights.iter().map(|w| n * w / tw).collect();
            let assigned: u64 = counts.iter().sum();
            counts[0] += n - assigned;
            (game, counts)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rounds conserve players and keep loads consistent, for every
    /// protocol and both engines.
    #[test]
    fn rounds_conserve_players(
        (game, counts) in arb_singleton(),
        seed in 0u64..1000,
        engine_player_level in any::<bool>(),
        which in 0u8..3,
    ) {
        let protocol: Protocol = match which {
            0 => ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
            1 => ExplorationProtocol::paper_default().into(),
            _ => Protocol::combined_default(),
        };
        let engine = if engine_player_level {
            EngineKind::PlayerLevel
        } else {
            EngineKind::Aggregate
        };
        let n = game.total_players();
        let state = State::from_counts(&game, counts).unwrap();
        let mut sim = Simulation::new(&game, protocol, state).unwrap().with_engine(engine);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..10 {
            sim.step(&mut rng).unwrap();
            prop_assert_eq!(sim.state().counts().iter().sum::<u64>(), n);
            prop_assert!(sim.state().loads_consistent(&game));
        }
    }

    /// The migration matrix only contains strictly improving pairs for pure
    /// imitation (it never proposes a latency-worsening move).
    #[test]
    fn imitation_flows_are_improving((game, counts) in arb_singleton()) {
        let state = State::from_counts(&game, counts).unwrap();
        let sim = Simulation::new(
            &game,
            ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
            state,
        )
        .unwrap();
        for flow in sim.migration_matrix() {
            prop_assert!(flow.gain > 0.0);
            prop_assert!(flow.probability > 0.0 && flow.probability <= 1.0);
            prop_assert!(flow.expected_virtual_gain() <= 0.0);
        }
    }

    /// Imitation never moves players onto empty strategies (without virtual
    /// agents), so the support never grows.
    #[test]
    fn imitation_support_never_grows(
        (game, counts) in arb_singleton(),
        seed in 0u64..1000,
    ) {
        let state = State::from_counts(&game, counts).unwrap();
        let support_before: Vec<bool> = state.counts().iter().map(|&c| c > 0).collect();
        let mut sim = Simulation::new(
            &game,
            ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
            state,
        )
        .unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            sim.step(&mut rng).unwrap();
        }
        for (i, had) in support_before.iter().enumerate() {
            if !had {
                prop_assert_eq!(sim.state().counts()[i], 0);
            }
        }
    }

    /// Successive-shortest-path Φ* matches brute force on random two-link
    /// games (exhaustive over all splits).
    #[test]
    fn flow_matches_brute_force_on_two_links(
        a1 in 1u32..=6,
        a2 in 1u32..=6,
        k1 in 1u32..=3,
        k2 in 1u32..=3,
        n in 1u64..=30,
    ) {
        let lat = |a: u32, k: u32| -> congames::model::LatencyFn {
            if k == 1 {
                Affine::linear(a as f64).into()
            } else {
                congames::Monomial::new(a as f64, k).into()
            }
        };
        let (g, s, t) = builders::parallel_links(2, |i| {
            if i == 0 { lat(a1, k1) } else { lat(a2, k2) }
        });
        let flow = min_potential_flow(&g, s, t, n).unwrap();
        let net = NetworkGame::build(g, s, t, n, 10).unwrap();
        let mut best = f64::INFINITY;
        for x in 0..=n {
            let state = State::from_counts(net.game(), vec![x, n - x]).unwrap();
            best = best.min(congames::model::potential(net.game(), &state));
        }
        prop_assert!((flow.cost - best).abs() < 1e-9);
    }
}
