//! Property-based tests of the scenario trace format: for every valid
//! schedule, `parse_trace(write_trace(s)) == s` (the loader/writer round
//! trip is the identity, so committed traces and in-memory schedules can
//! never drift apart), the canonical rendering is a fixed point, and the
//! digest is a function of the schedule alone. Deterministic rejection
//! tests (bad header, out-of-order rounds, wrong arity, bad fields) ride
//! along, each pinned to its precise line-numbered error.

use congames::scenario::{
    trace::{parse_trace, write_trace, TRACE_HEADER},
    LatencySpec, ScenarioError, Schedule, ScheduledEvent,
};
use proptest::prelude::*;

/// Finite, non-negative floats that exercise the shortest-round-trip
/// Display path (integers, awkward decimals, and dense-mantissa dyadics
/// in `[1, 2)` alike). The vendored proptest has no `prop_oneof`, so
/// variant choice is a generated tag, as elsewhere in this suite.
fn coeff() -> impl Strategy<Value = f64> {
    (0u8..3, 0u32..1_000_000, 1u64..1 << 50).prop_map(|(tag, i, b)| match tag {
        0 => f64::from(i) / 1024.0,
        1 => f64::from(i % 1000),
        _ => f64::from_bits(b | (1023u64 << 52)),
    })
}

fn latency_spec() -> impl Strategy<Value = LatencySpec> {
    (0u8..3, coeff(), coeff(), 1u32..6).prop_map(|(tag, a, b, degree)| match tag {
        0 => LatencySpec::Constant { value: a },
        1 => LatencySpec::Affine { slope: a, intercept: b },
        _ => LatencySpec::Monomial { coefficient: a, degree },
    })
}

fn event() -> impl Strategy<Value = ScheduledEvent> {
    (0u8..5, 0u32..64, latency_spec(), 0.001f64..1000.0, 1u64..10_000).prop_map(
        |(tag, id, latency, factor, count)| match tag {
            0 => ScheduledEvent::SetLatency { resource: id, latency },
            1 => ScheduledEvent::ScaleLatency { resource: id, factor },
            2 => ScheduledEvent::AddPlayers { strategy: id, count },
            3 => ScheduledEvent::RemovePlayers { strategy: id, count },
            _ => ScheduledEvent::SetDemand { class: id as usize, players: count },
        },
    )
}

fn schedule() -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((0u64..1_000_000, event()), 0..40)
        .prop_map(|events| Schedule::new(events).expect("generated events are valid"))
}

proptest! {
    /// The tentpole property: the loader inverts the writer exactly, the
    /// canonical rendering is a fixed point, and the digest survives the
    /// round trip (it is defined over the canonical bytes).
    #[test]
    fn write_parse_round_trip_is_identity(s in schedule()) {
        let text = write_trace(&s);
        let parsed = parse_trace(&text).expect("canonical traces parse");
        prop_assert_eq!(&parsed, &s);
        // The canonical form is a fixed point of write ∘ parse.
        prop_assert_eq!(write_trace(&parsed), text);
        prop_assert_eq!(parsed.digest(), s.digest());
    }

    /// Blank lines and comments are transparent: injecting them between
    /// event lines parses to the same schedule.
    #[test]
    fn comments_and_blank_lines_are_transparent(s in schedule(), gap in 0usize..5) {
        let text = write_trace(&s);
        let mut padded = String::new();
        for line in text.lines() {
            padded.push_str(line);
            padded.push('\n');
            for _ in 0..gap {
                padded.push_str("# interleaved comment\n\n");
            }
        }
        prop_assert_eq!(parse_trace(&padded).expect("padded trace parses"), s);
    }
}

/// Assert `text` fails to parse with an error naming `line` and containing
/// `needle`.
fn assert_rejects(text: &str, line: usize, needle: &str) {
    match parse_trace(text) {
        Err(ScenarioError::Parse { line: got, message }) => {
            assert_eq!(got, line, "wrong line for {needle:?}: {message}");
            assert!(message.contains(needle), "error {message:?} lacks {needle:?}");
        }
        other => panic!("expected a line-{line} parse error ({needle:?}), got {other:?}"),
    }
}

#[test]
fn missing_or_wrong_header_is_line_one() {
    assert_rejects("50,scale_latency,0,4\n", 1, "header");
    assert_rejects("# congames-trace v9\n", 1, "header");
    assert_eq!(TRACE_HEADER, "# congames-trace v1");
}

#[test]
fn out_of_order_rounds_name_the_offending_line() {
    let text = "# congames-trace v1\n100,scale_latency,0,4\n50,scale_latency,1,2\n";
    assert_rejects(text, 3, "out of order");
    // Equal rounds are fine — file order is the tie order.
    let ok = "# congames-trace v1\n100,scale_latency,0,4\n100,scale_latency,1,2\n";
    assert_eq!(parse_trace(ok).unwrap().len(), 2);
}

#[test]
fn wrong_arity_and_bad_fields_are_line_numbered() {
    assert_rejects("# congames-trace v1\n50,scale_latency,0\n", 2, "argument");
    assert_rejects("# congames-trace v1\n50,add_players,0,1,9\n", 2, "argument");
    assert_rejects("# congames-trace v1\nx,scale_latency,0,4\n", 2, "cannot parse");
    assert_rejects("# congames-trace v1\n50,scale_latency,zero,4\n", 2, "cannot parse");
    assert_rejects("# congames-trace v1\n50,scale_latency,0,-4\n", 2, "finite and positive");
    assert_rejects("# congames-trace v1\n50,teleport,0,4\n", 2, "unknown event");
    assert_rejects("# congames-trace v1\n50,set_latency,0,cubic:3\n", 2, "unknown latency spec");
    assert_rejects("# congames-trace v1\n50,add_players,0,0\n", 2, "at least one player");
}

#[test]
fn empty_trace_is_the_empty_schedule() {
    let s = parse_trace("# congames-trace v1\n").unwrap();
    assert!(s.is_empty());
    assert_eq!(write_trace(&s), "# congames-trace v1\n");
}
