//! Seeded statistical tests of the paper's quantitative claims — fast
//! versions of the claim experiments, run as part of the test suite.

use congames::dynamics::{ImitationProtocol, NuRule, Simulation, StopCondition, StopSpec};
use congames::lowerbounds::{tripled_initial_state, tripled_threshold_game, MaxCutInstance};
use congames::model::{LinearSingleton, State};
use congames::sampling::seeded_rng;
use congames::{Affine, EngineKind};
use rand::Rng;

fn braess(n: u64) -> congames::network::NetworkGame {
    let a = 10.0 / n as f64;
    let (g, s, t) = congames::network::builders::braess([
        Affine::linear(a).into(),
        congames::Constant::new(10.0).into(),
        congames::Constant::new(10.0).into(),
        Affine::linear(a).into(),
        congames::Constant::new(0.5).into(),
    ]);
    congames::network::NetworkGame::build(g, s, t, n, 10).unwrap()
}

/// Corollary 3 (C1): the mean potential trajectory is non-increasing.
#[test]
fn mean_potential_is_supermartingale() {
    let net = braess(512);
    let start = State::from_counts(net.game(), vec![384, 64, 64]).unwrap();
    let seeds = 48;
    let rounds = 60;
    let mut mean = vec![0.0f64; rounds + 1];
    for s in 0..seeds {
        let mut sim =
            Simulation::new(net.game(), ImitationProtocol::paper_default().into(), start.clone())
                .unwrap();
        let mut rng = seeded_rng(100, s);
        mean[0] += sim.potential();
        for record in mean.iter_mut().take(rounds + 1).skip(1) {
            sim.step(&mut rng).unwrap();
            *record += sim.potential();
        }
    }
    for w in mean.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-6 * w[0].abs(),
            "mean potential increased: {} -> {}",
            w[0] / seeds as f64,
            w[1] / seeds as f64
        );
    }
}

/// Lemma 2 (C2): averaged over seeds and rounds, E[ΔΦ] ≤ ½·E[ΣV].
#[test]
fn lemma2_ratio_holds() {
    let net = braess(512);
    let start = State::from_counts(net.game(), vec![384, 64, 64]).unwrap();
    let mut sum_virtual = 0.0;
    let mut sum_realized = 0.0;
    for s in 0..48u64 {
        let mut sim =
            Simulation::new(net.game(), ImitationProtocol::paper_default().into(), start.clone())
                .unwrap();
        let mut rng = seeded_rng(200, s);
        for _ in 0..40 {
            sum_virtual += sim.expected_virtual_gain();
            sum_realized += sim.step(&mut rng).unwrap().delta_potential;
        }
    }
    assert!(sum_virtual < 0.0, "the start state must not be stable");
    // Lemma 2: E[ΔΦ] ≤ ½·E[ΣV] (both negative). Allow 10% statistical slack.
    assert!(
        sum_realized <= 0.5 * sum_virtual * 0.9,
        "realized {sum_realized} vs half-virtual {}",
        0.5 * sum_virtual
    );
}

/// Theorem 10 (C9): the Price of Imitation from random starts stays small.
#[test]
fn price_of_imitation_is_bounded() {
    let mut worst: f64 = 0.0;
    for s in 0..12u64 {
        let mut rng = seeded_rng(300, s);
        let coeffs: Vec<f64> = (0..6).map(|_| 1.0 + rng.gen::<f64>() * 3.0).collect();
        let game = LinearSingleton::build_game(&coeffs, 512).unwrap();
        let ls = LinearSingleton::analyze(&game).unwrap();
        // Random initialization.
        let mut counts = vec![0u64; 6];
        for _ in 0..512 {
            counts[rng.gen_range(0..6)] += 1;
        }
        let state = State::from_counts(&game, counts).unwrap();
        let mut sim =
            Simulation::new(&game, ImitationProtocol::paper_default().into(), state).unwrap();
        let out = sim
            .run(
                &StopSpec::new(vec![
                    StopCondition::ImitationStable,
                    StopCondition::MaxRounds(500_000),
                ])
                .with_check_every(4),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.reason, congames::StopReason::ImitationStable);
        worst = worst.max(ls.price_ratio(&game, sim.state()));
    }
    assert!(worst <= 3.0, "price of imitation {worst} exceeded the 3 + o(1) bound");
}

/// Theorem 6 invariant under the *concurrent* protocol too: clones never
/// collapse onto one strategy along imitation dynamics.
#[test]
fn tripled_clones_never_collapse_concurrently() {
    for s in 0..6u64 {
        let mut rng = seeded_rng(400, s);
        let mc = MaxCutInstance::random(4, 20, &mut rng);
        let game = tripled_threshold_game(&mc).unwrap();
        let cut = rng.gen::<u64>() & 0xF;
        let state = tripled_initial_state(&game, cut).unwrap();
        let proto = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
        let mut sim = Simulation::new(&game, proto, state).unwrap();
        for _ in 0..300 {
            sim.step(&mut rng).unwrap();
            for class in 0..4usize {
                let out = sim.state().counts()[2 * class];
                let inn = sim.state().counts()[2 * class + 1];
                assert!(
                    out + inn == 3 && out < 3 && inn < 3,
                    "class {class} collapsed: ({out}, {inn})"
                );
            }
        }
    }
}

/// The two engines produce statistically identical multi-round outcomes on
/// a path-overlap (non-singleton) game.
#[test]
fn engines_agree_on_network_game() {
    let net = braess(256);
    let start = State::from_counts(net.game(), vec![192, 32, 32]).unwrap();
    let reps = 600;
    let rounds = 5;
    let mut means = [0.0f64; 2];
    for (ei, engine) in [EngineKind::Aggregate, EngineKind::PlayerLevel].into_iter().enumerate() {
        let mut sum = 0.0;
        for rep in 0..reps {
            let mut sim = Simulation::new(
                net.game(),
                ImitationProtocol::paper_default().into(),
                start.clone(),
            )
            .unwrap()
            .with_engine(engine);
            let mut rng = seeded_rng(500 + ei as u64, rep);
            for _ in 0..rounds {
                sim.step(&mut rng).unwrap();
            }
            sum += sim.state().counts()[0] as f64;
        }
        means[ei] = sum / reps as f64;
    }
    // Counts move by tens of players; the SEM of the mean is ≈ 0.25, so a
    // 1.5-player tolerance is a generous 5σ-style bound.
    assert!(
        (means[0] - means[1]).abs() < 1.5,
        "engine means diverge: {} vs {}",
        means[0],
        means[1]
    );
}

/// Theorem 9 flavour: with enough players, no link empties over a long run.
#[test]
fn no_extinction_for_large_populations() {
    let n = 256u64;
    let game = congames::CongestionGame::singleton(
        vec![
            Affine::linear(1.0 / n as f64).into(),
            Affine::linear(1.5 / n as f64).into(),
            Affine::linear(2.0 / n as f64).into(),
        ],
        n,
    )
    .unwrap();
    for s in 0..8u64 {
        let mut rng = seeded_rng(600, s);
        let mut counts = vec![0u64; 3];
        for _ in 0..n {
            counts[rng.gen_range(0..3)] += 1;
        }
        let state = State::from_counts(&game, counts).unwrap();
        let proto = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
        let mut sim = Simulation::new(&game, proto, state).unwrap();
        for _ in 0..2000 {
            sim.step(&mut rng).unwrap();
            assert!(
                sim.state().loads().iter().all(|&l| l > 0),
                "a link emptied at round {} (seed {s})",
                sim.round()
            );
        }
    }
}
