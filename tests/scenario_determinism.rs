//! The determinism contract extended to nonstationary runs: attaching a
//! scenario schedule to an ensemble must leave every bit-identity
//! guarantee intact. Shocked sweeps are compared across thread counts
//! 1/2/8 under both RNG backends, a shocked shard×3 wire merge is checked
//! bitwise against the single-process reduction, and mixed-scenario shard
//! headers (differing only in their `scenario=` config digest) must be
//! rejected per file.
//!
//! Scenario hooks are RNG-free by contract — they fire as a function of
//! the round number alone — which is exactly why every stationary
//! guarantee carries over unchanged.

use congames::dynamics::{
    merge_partials, EngineKind, Ensemble, FinalSummary, ImitationProtocol, MapItem, RoundHook,
    ScalarStats, StopSpec,
};
use congames::sampling::RngMode;
use congames::scenario::{generate::step_shock, Schedule, ScheduleCursor, ScheduledEvent};
use congames_testutil::games;
use std::sync::Arc;

/// A schedule that exercises every cache-breaking event family: a latency
/// shock, a demand change (support churn), and an arrival/departure pair.
fn churn_schedule() -> Arc<Schedule> {
    Arc::new(
        Schedule::new(vec![
            (6, ScheduledEvent::ScaleLatency { resource: 0, factor: 3.0 }),
            (12, ScheduledEvent::SetDemand { class: 0, players: 150 }),
            (18, ScheduledEvent::AddPlayers { strategy: 1, count: 10 }),
            (22, ScheduledEvent::RemovePlayers { strategy: 1, count: 5 }),
        ])
        .expect("valid churn schedule"),
    )
}

fn shocked_ensemble<'a>(
    game: &'a congames::CongestionGame,
    start: &congames::State,
    engine: EngineKind,
    rng: RngMode,
    threads: usize,
    schedule: Option<Arc<Schedule>>,
) -> Ensemble<'a> {
    let mut e = Ensemble::new(game, ImitationProtocol::paper_default().into(), start.clone())
        .expect("valid ensemble")
        .engine(engine)
        .rng_mode(rng)
        .trials(16)
        .base_seed(2026)
        .threads(threads);
    if let Some(schedule) = schedule {
        e = e.with_round_hook(move || {
            Box::new(ScheduleCursor::new(Arc::clone(&schedule))) as Box<dyn RoundHook>
        });
    }
    e
}

/// Shocked ensembles are bit-identical for thread counts 1/2/8, under
/// both engines and both RNG backends — and actually shocked (the hook
/// changes the outcome versus the stationary run).
#[test]
fn shocked_ensemble_identical_across_threads_and_rng_modes() {
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    let stop = StopSpec::max_rounds(30);
    let schedule = churn_schedule();
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        for rng in [RngMode::Xoshiro, RngMode::Counter] {
            let run = |threads: usize, sched: Option<Arc<Schedule>>| {
                shocked_ensemble(&game, &start, engine, rng, threads, sched)
                    .run_with(&stop, |sim, out| {
                        (out.rounds, out.potential.to_bits(), sim.state().counts().to_vec())
                    })
                    .expect("ensemble run succeeds")
            };
            let reference = run(1, Some(Arc::clone(&schedule)));
            for threads in [2, 8] {
                assert_eq!(
                    reference,
                    run(threads, Some(Arc::clone(&schedule))),
                    "{engine:?}/{rng}: shocked ensemble changed with {threads} threads"
                );
            }
            // The events moved demand from 120 to 150 (+10 −5): every
            // trial's final counts must total 155, never the original 120.
            for (_, _, counts) in &reference {
                assert_eq!(counts.iter().sum::<u64>(), 155, "{engine:?}/{rng}");
            }
            assert_ne!(
                reference,
                run(1, None),
                "{engine:?}/{rng}: the schedule had no observable effect"
            );
        }
    }
}

/// A shocked shard×3 run, pushed through the wire encoding and merged in
/// shard order, is bit-identical to the single-process shocked reduction.
#[test]
fn shocked_shard_merge_identical_to_single_process() {
    use congames::dynamics::wire::{decode_shard_file, encode_shard_file, WireReduce};
    let game = games::affine_singleton(120);
    let start = games::geometric_state(&game);
    let stop = StopSpec::max_rounds(30);
    let schedule = step_shock(9, 0, 4.0).map(Arc::new).expect("valid step shock");
    let scalar =
        || MapItem::new(|s: congames::dynamics::RunSummary| s.potential, ScalarStats::new());
    for rng in [RngMode::Xoshiro, RngMode::Counter] {
        let ensemble = || {
            shocked_ensemble(
                &game,
                &start,
                EngineKind::Aggregate,
                rng,
                2,
                Some(Arc::clone(&schedule)),
            )
        };
        let single = ensemble()
            .run_reduced(&stop, |_t| FinalSummary, scalar())
            .expect("single-process run succeeds");
        let mut leaves = Vec::new();
        for shard in 0..3 {
            let blocks = ensemble()
                .run_reduced_shard(shard, 3, &stop, |_t| FinalSummary, &scalar())
                .expect("shard run succeeds");
            // Round-trip the leaves through the wire format, as the CLI
            // shard files do.
            let header = congames::dynamics::wire::ShardHeader {
                base_seed: 2026,
                trials: 16,
                trial_lo: ensemble().shard_trials(shard, 3).start as u64,
                trial_hi: ensemble().shard_trials(shard, 3).end as u64,
                shard: shard as u32,
                num_shards: 3,
                rng_mode: rng,
                reducer_id: scalar().wire_id(),
                config: format!("scenario={}", schedule.digest()),
            };
            let bytes = encode_shard_file(&header, &blocks);
            let (_, decoded) = decode_shard_file(&scalar(), &bytes).expect("shard file decodes");
            leaves.extend(decoded);
        }
        let merged = merge_partials(scalar(), leaves);
        assert_eq!(
            merged.inner(),
            single.inner(),
            "{rng}: shocked 3-shard wire merge changed the reduction bits"
        );
    }
}

/// Shard headers that differ only in their `scenario=` digest are a
/// different run configuration and must not merge.
#[test]
fn mixed_scenario_shard_sets_are_rejected() {
    use congames::dynamics::wire::{validate_shard_sequence, ShardHeader, WireError};
    let shock = step_shock(9, 0, 4.0).expect("valid step shock");
    let other = step_shock(10, 0, 4.0).expect("valid step shock");
    assert_ne!(shock.digest(), other.digest());
    let header = |shard: u32, digest: &str| ShardHeader {
        base_seed: 2026,
        trials: 64,
        trial_lo: u64::from(shard) * 32,
        trial_hi: u64::from(shard + 1) * 32,
        shard,
        num_shards: 2,
        rng_mode: RngMode::Counter,
        reducer_id: "welford".into(),
        config: format!("links=1,2;scenario={digest}"),
    };
    let headers = vec![header(0, &shock.digest()), header(1, &other.digest())];
    let err = validate_shard_sequence(&headers).expect_err("mixed scenarios must not merge");
    assert!(matches!(err, WireError::ConfigMismatch { shard: 1, .. }), "{err:?}");
    assert!(err.to_string().contains("different run configuration"), "{err}");
    // Uniform-scenario sets stay mergeable.
    let ok = vec![header(0, &shock.digest()), header(1, &shock.digest())];
    validate_shard_sequence(&ok).expect("uniform-scenario shards merge");
}
