//! Property-based tests of the reducer wire encoding: for every stock
//! reducer, `encode → decode` is the bit-level identity and
//! `encode → decode → merge` equals the in-memory merge bitwise — the
//! property `congames merge` relies on to reproduce single-process
//! `run_reduced` output exactly. Deterministic rejection tests (truncated
//! frame, flipped byte, wrong version, wrong seed) ride along.

use congames::dynamics::wire::{
    decode_shard_file, decode_shard_header, encode_shard_file, validate_shard_sequence,
    ShardHeader, WireCursor, WireError, WireReduce, MAGIC, WIRE_VERSION,
};
use congames::dynamics::{
    ConvergenceHistogram, MapItem, MinMax, PerRoundStats, QuantileSketch, Reducer, RoundRecord,
    RunSummary, ScalarStats, Welford, STOP_REASONS,
};
use congames::sampling::RngMode;
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)
}

/// A reducer fed `xs`, starting from `prototype.identity()`.
fn fed<R: Reducer>(prototype: &R, xs: impl IntoIterator<Item = R::Item>) -> R {
    let mut r = prototype.identity();
    for x in xs {
        r.absorb(x);
    }
    r
}

/// One encode→decode round trip against `prototype`.
fn round_trip<R: WireReduce>(prototype: &R, value: &R) -> R {
    let mut buf = Vec::new();
    value.encode_partial(&mut buf);
    let mut cur = WireCursor::new(&buf);
    let decoded = prototype.decode_partial(&mut cur).expect("round trip decodes");
    assert_eq!(cur.remaining(), 0, "decode must consume the whole frame");
    decoded
}

/// The tentpole property for one reducer: the round trip is the identity,
/// and merging round-tripped partials is bitwise equal to merging the
/// in-memory originals.
fn assert_wire_faithful<R: WireReduce + PartialEq + std::fmt::Debug + Clone>(
    prototype: &R,
    a: R,
    b: R,
) {
    assert_eq!(round_trip(prototype, &a), a);
    assert_eq!(round_trip(prototype, &b), b);
    let mut in_memory = a.clone();
    in_memory.merge(b.clone());
    let mut over_wire = round_trip(prototype, &a);
    over_wire.merge(round_trip(prototype, &b));
    assert_eq!(over_wire, in_memory, "wire trip changed the merge result");
}

fn summaries(xs: &[f64]) -> impl Iterator<Item = RunSummary> + '_ {
    xs.iter().enumerate().map(|(i, &x)| RunSummary {
        reason: STOP_REASONS[i % STOP_REASONS.len()],
        rounds: x.abs() as u64,
        potential: x,
    })
}

fn records(xs: &[f64]) -> Vec<RoundRecord> {
    xs.iter()
        .enumerate()
        .map(|(i, &x)| RoundRecord {
            round: i as u64,
            potential: x,
            l_av: x / 2.0,
            l_av_plus: x / 2.0 + 1.0,
            max_latency: x.abs(),
            migrations: (i % 7) as u64,
            support: i % 3 + 1,
            unsatisfied_fraction: if i % 2 == 0 { Some(x.fract()) } else { None },
            shock: i % 5 == 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn welford_and_minmax_survive_the_wire(xs in samples(), cut in 0.0f64..1.0) {
        let i = (cut * xs.len() as f64) as usize;
        let w = Welford::new();
        assert_wire_faithful(&w, fed(&w, xs[..i].iter().copied()), fed(&w, xs[i..].iter().copied()));
        let m = MinMax::new();
        assert_wire_faithful(&m, fed(&m, xs[..i].iter().copied()), fed(&m, xs[i..].iter().copied()));
    }

    #[test]
    fn quantile_sketch_survives_the_wire_including_non_finite(
        xs in samples(),
        cut in 0.0f64..1.0,
        inject_nan in any::<bool>(),
    ) {
        let i = (cut * xs.len() as f64) as usize;
        let proto = QuantileSketch::default();
        let mut a = fed(&proto, xs[..i].iter().copied());
        if inject_nan {
            a.push(f64::NAN);
            a.push(f64::INFINITY);
        }
        let b = fed(&proto, xs[i..].iter().copied());
        assert_wire_faithful(&proto, a, b);
    }

    #[test]
    fn scalar_stats_and_combinators_survive_the_wire(xs in samples(), cut in 0.0f64..1.0) {
        let i = (cut * xs.len() as f64) as usize;
        let s = ScalarStats::new();
        assert_wire_faithful(&s, fed(&s, xs[..i].iter().copied()), fed(&s, xs[i..].iter().copied()));
        // Tuple of MapItems over RunSummary — the `--reduce quantiles` shape.
        let proto = (
            MapItem::new(|s: RunSummary| s.rounds as f64, ScalarStats::new()),
            MapItem::new(|s: RunSummary| s.potential, ScalarStats::new()),
        );
        assert_wire_faithful(
            &proto,
            fed(&proto, summaries(&xs[..i])),
            fed(&proto, summaries(&xs[i..])),
        );
        // Triple over plain f64 streams.
        let proto = (Welford::new(), MinMax::new(), ScalarStats::new());
        assert_wire_faithful(
            &proto,
            fed(&proto, xs[..i].iter().copied()),
            fed(&proto, xs[i..].iter().copied()),
        );
    }

    #[test]
    fn per_round_stats_survive_the_wire(xs in samples(), cut in 0.0f64..1.0) {
        let i = (cut * xs.len() as f64) as usize;
        let proto = MapItem::new(|r: Vec<RoundRecord>| r, PerRoundStats::new());
        // Each "trial" contributes one record series; uneven lengths
        // exercise the ragged per-index table.
        let a = fed(&proto, [records(&xs[..i])]);
        let b = fed(&proto, [records(&xs[i..]), records(&xs[..i.min(3)])]);
        assert_wire_faithful(&proto, a, b);
    }

    #[test]
    fn convergence_histogram_survives_the_wire(xs in samples(), cut in 0.0f64..1.0) {
        let i = (cut * xs.len() as f64) as usize;
        let proto = ConvergenceHistogram::new();
        assert_wire_faithful(&proto, fed(&proto, summaries(&xs[..i])), fed(&proto, summaries(&xs[i..])));
    }

    #[test]
    fn materializing_vec_survives_the_wire(xs in samples(), cut in 0.0f64..1.0) {
        let i = (cut * xs.len() as f64) as usize;
        let proto: Vec<RunSummary> = Vec::new();
        assert_wire_faithful(&proto, summaries(&xs[..i]).collect(), summaries(&xs[i..]).collect());
        let proto: Vec<f64> = Vec::new();
        assert_wire_faithful(&proto, xs[..i].to_vec(), xs[i..].to_vec());
    }

    /// Any single flipped bit in a shard file must be detected: either the
    /// header no longer parses/validates, or the payload checksum fails —
    /// never a silently different merge input. (Truncation is the
    /// deterministic tests' job below.)
    #[test]
    fn any_flipped_byte_is_rejected(xs in samples(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let w = Welford::new();
        let header = sample_header("welford");
        let blocks = vec![fed(&w, xs.iter().copied())];
        let mut bytes = encode_shard_file(&header, &blocks);
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        // The file must not decode to the original content with a valid
        // header: either some decode stage errors, or (if the flip landed
        // in ignorable padding — it can't, every byte is load-bearing) the
        // content differs.
        match decode_shard_file(&w, &bytes) {
            Err(_) => {}
            Ok((h, decoded)) => {
                prop_assert!(
                    h != header || decoded != blocks,
                    "flipped bit {bit} at byte {pos} went undetected"
                );
            }
        }
    }
}

fn sample_header(reducer_id: &str) -> ShardHeader {
    ShardHeader {
        base_seed: 42,
        trials: 96,
        trial_lo: 0,
        trial_hi: 32,
        shard: 0,
        num_shards: 3,
        rng_mode: RngMode::Xoshiro,
        reducer_id: reducer_id.into(),
        config: "links=1,2;players=10;reduce=quantiles".into(),
    }
}

fn sample_file() -> Vec<u8> {
    let mut w = Welford::new();
    for x in [1.0, 2.5, -3.0] {
        w.push(x);
    }
    encode_shard_file(&sample_header("welford"), &[w])
}

#[test]
fn truncated_frames_are_rejected_at_every_length() {
    // Every proper prefix must fail with a *precise* error — never panic,
    // never decode successfully.
    let bytes = sample_file();
    for len in 0..bytes.len() {
        let err = decode_shard_file(&Welford::new(), &bytes[..len])
            .expect_err("a proper prefix must never decode");
        assert!(
            matches!(err, WireError::Truncated { .. } | WireError::BadMagic),
            "prefix of {len} bytes gave unexpected error {err:?}"
        );
    }
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = sample_file();
    let version_at = MAGIC.len();
    bytes[version_at] = (WIRE_VERSION + 1) as u8;
    let err = decode_shard_header(&bytes).unwrap_err();
    assert_eq!(err, WireError::UnsupportedVersion { found: WIRE_VERSION + 1 });
}

#[test]
fn wrong_seed_shards_do_not_merge() {
    let headers: Vec<ShardHeader> = (0..3u32)
        .map(|s| ShardHeader {
            shard: s,
            trial_lo: u64::from(s) * 32,
            trial_hi: u64::from(s + 1) * 32,
            ..sample_header("welford")
        })
        .collect();
    assert_eq!(validate_shard_sequence(&headers), Ok(()));
    let mut wrong = headers;
    wrong[2].base_seed = 1234;
    assert_eq!(
        validate_shard_sequence(&wrong),
        Err(WireError::SeedMismatch { expected: 42, found: 1234 })
    );
}

#[test]
fn flipped_payload_byte_fails_the_checksum() {
    let mut bytes = sample_file();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    assert!(matches!(
        decode_shard_file(&Welford::new(), &bytes),
        Err(WireError::ChecksumMismatch { .. })
    ));
}
