//! Edge-case coverage of the dynamics layer: degenerate games, stopping
//! interactions, virtual agents, recording cadence, and trajectory APIs.

use congames::dynamics::{
    Damping, EngineKind, ImitationProtocol, NuRule, Protocol, RecordConfig, Simulation,
    StopCondition, StopReason, StopSpec,
};
use congames::model::{ApproxEquilibrium, State};
use congames::sampling::seeded_rng;
use congames::{Affine, CongestionGame, Constant, Monomial, StrategyId};

fn links(latencies: Vec<congames::model::LatencyFn>, n: u64) -> CongestionGame {
    CongestionGame::singleton(latencies, n).unwrap()
}

#[test]
fn single_player_class_is_inert_under_imitation() {
    // One player has nobody to imitate: every round is a no-op.
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()], 1);
    let state = State::from_counts(&game, vec![1, 0]).unwrap();
    let proto: Protocol = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
    for engine in [EngineKind::Aggregate, EngineKind::PlayerLevel] {
        let mut sim = Simulation::new(&game, proto, state.clone()).unwrap().with_engine(engine);
        let mut rng = seeded_rng(1, engine as u64);
        for _ in 0..50 {
            let stats = sim.step(&mut rng).unwrap();
            assert_eq!(stats.migrations, 0);
        }
        assert_eq!(sim.state().count(StrategyId::new(0)), 1);
    }
}

#[test]
fn zero_player_game_runs_without_panic() {
    let game = links(vec![Affine::linear(1.0).into()], 0);
    let state = State::from_counts(&game, vec![0]).unwrap();
    let mut sim = Simulation::new(&game, ImitationProtocol::paper_default().into(), state).unwrap();
    let mut rng = seeded_rng(2, 0);
    let out = sim.run(&StopSpec::new(vec![StopCondition::ImitationStable]), &mut rng).unwrap();
    assert_eq!(out.rounds, 0);
    assert_eq!(out.reason, StopReason::ImitationStable);
}

#[test]
fn virtual_agents_discover_empty_strategies() {
    // All players on the slow link; virtual agents make the fast link
    // sampleable, so imitation escapes the lost-strategy trap (Section 6,
    // option 2).
    let game = links(vec![Constant::new(100.0).into(), Constant::new(1.0).into()], 64);
    let state = State::from_counts(&game, vec![64, 0]).unwrap().with_virtual_agents(&game);
    let proto: Protocol = ImitationProtocol::paper_default()
        .with_virtual_agents(true)
        .with_nu_rule(NuRule::None)
        .into();
    let mut sim = Simulation::new(&game, proto, state).unwrap();
    let mut rng = seeded_rng(3, 0);
    for _ in 0..2000 {
        sim.step(&mut rng).unwrap();
        if sim.state().count(StrategyId::new(1)) > 0 {
            break;
        }
    }
    assert!(
        sim.state().count(StrategyId::new(1)) > 0,
        "virtual agents failed to seed the empty strategy"
    );
}

#[test]
fn recording_cadence_subsamples() {
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], 100);
    let state = State::from_counts(&game, vec![80, 20]).unwrap();
    let mut sim = Simulation::new(
        &game,
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
        state,
    )
    .unwrap()
    .with_recording(RecordConfig { every: 5, approx: None });
    let mut rng = seeded_rng(4, 0);
    let out = sim.run(&StopSpec::max_rounds(17), &mut rng).unwrap();
    // Records at rounds 0, 5, 10, 15 plus the final state at 17.
    let rounds: Vec<u64> = out.trajectory.records().iter().map(|r| r.round).collect();
    assert_eq!(rounds, vec![0, 5, 10, 15, 17]);
}

#[test]
fn unsatisfied_fraction_is_recorded_when_configured() {
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], 100);
    let state = State::from_counts(&game, vec![90, 10]).unwrap();
    let eq = ApproxEquilibrium::new(0.0, 0.05, 0.0).unwrap();
    let mut sim = Simulation::new(
        &game,
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
        state,
    )
    .unwrap()
    .with_recording(RecordConfig::with_approx(eq));
    let mut rng = seeded_rng(5, 0);
    let out = sim.run(&StopSpec::max_rounds(3), &mut rng).unwrap();
    let first = out.trajectory.records()[0];
    assert!(first.unsatisfied_fraction.unwrap() > 0.0);
}

#[test]
fn potential_target_stop_fires() {
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], 200);
    let state = State::from_counts(&game, vec![150, 50]).unwrap();
    let phi0 = congames::model::potential(&game, &state);
    let mut sim = Simulation::new(
        &game,
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
        state,
    )
    .unwrap();
    let mut rng = seeded_rng(6, 0);
    let target = phi0 * 0.95;
    let out = sim
        .run(
            &StopSpec::new(vec![
                StopCondition::PotentialAtMost(target),
                StopCondition::MaxRounds(10_000),
            ]),
            &mut rng,
        )
        .unwrap();
    assert_eq!(out.reason, StopReason::PotentialReached);
    assert!(out.potential <= target);
}

#[test]
fn check_every_delays_detection_but_not_correctness() {
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], 50);
    let state = State::from_counts(&game, vec![40, 10]).unwrap();
    let proto: Protocol = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
    let mut fine = Simulation::new(&game, proto, state.clone()).unwrap();
    let mut coarse = Simulation::new(&game, proto, state).unwrap();
    let spec_fine =
        StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(10_000)]);
    let spec_coarse = spec_fine.clone().with_check_every(64);
    let mut r1 = seeded_rng(7, 0);
    let mut r2 = seeded_rng(7, 0);
    let out_fine = fine.run(&spec_fine, &mut r1).unwrap();
    let out_coarse = coarse.run(&spec_coarse, &mut r2).unwrap();
    assert_eq!(out_fine.reason, StopReason::ImitationStable);
    assert_eq!(out_coarse.reason, StopReason::ImitationStable);
    // The coarse check can only stop at multiples of 64.
    assert_eq!(out_coarse.rounds % 64, 0);
    assert!(out_coarse.rounds >= out_fine.rounds);
}

#[test]
fn fixed_damping_slows_migration() {
    let game = links(vec![Monomial::new(1.0, 2).into(), Monomial::new(1.0, 2).into()], 1000);
    let state = State::from_counts(&game, vec![900, 100]).unwrap();
    let mut expected = Vec::new();
    for damping in [Damping::None, Damping::Fixed(4.0)] {
        let proto: Protocol = ImitationProtocol::new(0.5)
            .unwrap()
            .with_damping(damping)
            .with_nu_rule(NuRule::None)
            .into();
        let sim = Simulation::new(&game, proto, state.clone()).unwrap();
        expected.push(sim.migration_matrix()[0].expected_movers);
    }
    assert!((expected[0] / expected[1] - 4.0).abs() < 1e-9);
}

#[test]
fn multi_class_games_migrate_within_classes_only() {
    // Two classes over a shared resource plus private ones.
    let mut b = CongestionGame::builder();
    let shared = b.add_resource(Affine::linear(1.0).into());
    let pa = b.add_resource(Affine::linear(1.0).into());
    let pb = b.add_resource(Affine::linear(1.0).into());
    b.add_class(
        "a",
        40,
        vec![congames::Strategy::singleton(shared), congames::Strategy::singleton(pa)],
    )
    .unwrap();
    b.add_class(
        "b",
        40,
        vec![congames::Strategy::singleton(shared), congames::Strategy::singleton(pb)],
    )
    .unwrap();
    let game = b.build().unwrap();
    let state = State::from_counts(&game, vec![30, 10, 30, 10]).unwrap();
    let proto: Protocol = ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into();
    let mut sim = Simulation::new(&game, proto, state).unwrap();
    let mut rng = seeded_rng(8, 0);
    for _ in 0..200 {
        sim.step(&mut rng).unwrap();
        let a_total = sim.state().counts()[0] + sim.state().counts()[1];
        let b_total = sim.state().counts()[2] + sim.state().counts()[3];
        assert_eq!(a_total, 40);
        assert_eq!(b_total, 40);
    }
}

#[test]
fn exploration_probability_formula_uses_class_parameters() {
    // β, ℓ_min and class sizes enter the exploration probability; verify
    // the closed form on a concrete instance.
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(2.0).into()], 10);
    let params = game.params();
    let state = State::from_counts(&game, vec![9, 1]).unwrap();
    let p = congames::ExplorationProtocol::new(0.5).unwrap();
    let mu = p.migration_probability(
        &game,
        &state,
        &params,
        StrategyId::new(0),
        StrategyId::new(1),
        2,
        10,
    );
    // gain = 9 − 4 = 5, ℓ_P = 9, scale = S·ℓ_min/(β·n) = 2·1/(2·10) = 0.1.
    let expect = 0.5 * 0.1 * 5.0 / 9.0;
    assert!((mu - expect).abs() < 1e-12, "mu {mu} vs expected {expect}");
}

/// Regression for the `check_every` contract documented on
/// [`StopSpec`]/[`StopCondition`]: cheap conditions (round budget,
/// potential target) are exempt from the cadence and fire on their exact
/// round, while expensive conditions (imitation stability) are only
/// evaluated on cadence rounds — so their detection lands on the first
/// cadence multiple at or after the first stable round, never later.
#[test]
fn check_every_gates_only_expensive_conditions() {
    let game = links(vec![Affine::linear(1.0).into(), Affine::linear(1.0).into()], 600);
    let state = State::from_counts(&game, vec![480, 120]).unwrap();
    let proto: Protocol = ImitationProtocol::paper_default().into();

    // MaxRounds is exempt: it fires at exactly 13 although 13 % 5 != 0.
    let mut sim = Simulation::new(&game, proto, state.clone()).unwrap();
    let mut rng = seeded_rng(40, 0);
    let out = sim.run(&StopSpec::max_rounds(13).with_check_every(5), &mut rng).unwrap();
    assert_eq!(out.reason, StopReason::MaxRounds);
    assert_eq!(out.rounds, 13, "cheap conditions must not be gated by check_every");

    // ImitationStable is gated: stopping rounds with cadence k are exactly
    // the cadence-1 stopping rounds rounded up to a multiple of k (a
    // stable state is absorbing, so the state waits for the next check).
    let run = |k: u64| {
        let mut sim = Simulation::new(&game, proto, state.clone()).unwrap();
        let mut rng = seeded_rng(41, 0);
        sim.run(
            &StopSpec::new(vec![StopCondition::ImitationStable, StopCondition::MaxRounds(50_000)])
                .with_check_every(k),
            &mut rng,
        )
        .unwrap()
    };
    let exact = run(1);
    assert_eq!(exact.reason, StopReason::ImitationStable);
    assert!(exact.rounds > 0, "the skewed start must take a few rounds to stabilize");
    for k in [3u64, 7, 16] {
        let gated = run(k);
        assert_eq!(gated.reason, StopReason::ImitationStable);
        assert_eq!(
            gated.rounds,
            exact.rounds.div_ceil(k) * k,
            "detection latency at cadence {k} must be bounded by the cadence"
        );
    }
}
