//! Property-based tests of the core invariants (proptest).

use congames::model::Strategy as GameStrategy;
use congames::model::{
    potential, potential_delta_for_load_change, CongestionGame, Migration, ResourceId, State,
    StrategyId,
};
use congames::{Affine, Monomial};
use proptest::prelude::*;

/// A random symmetric game over up to 6 resources and up to 5 strategies
/// (random non-empty resource subsets), plus a consistent random state.
fn arb_game_and_counts() -> impl Strategy<Value = (CongestionGame, Vec<u64>)> {
    (2usize..=6, 2usize..=5, 1u64..60).prop_flat_map(|(m, s, n)| {
        let subsets =
            proptest::collection::vec(proptest::collection::vec(0u32..m as u32, 1..=m), s..=s);
        let weights = proptest::collection::vec(1u64..=10, s..=s);
        let coeffs = proptest::collection::vec((1u32..=4, 1u32..=3), m..=m);
        (subsets, weights, coeffs).prop_map(move |(subsets, weights, coeffs)| {
            let mut b = CongestionGame::builder();
            for &(a, k) in &coeffs {
                if k == 1 {
                    b.add_resource(Affine::linear(a as f64).into());
                } else {
                    b.add_resource(Monomial::new(a as f64, k).into());
                }
            }
            let strategies: Vec<GameStrategy> = subsets
                .into_iter()
                .map(|ids| {
                    GameStrategy::new(ids.into_iter().map(ResourceId::new).collect())
                        .expect("non-empty subset")
                })
                .collect();
            // Distribute n players proportionally to the random weights.
            let total_w: u64 = weights.iter().sum();
            let mut counts: Vec<u64> = weights.iter().map(|w| n * w / total_w).collect();
            let assigned: u64 = counts.iter().sum();
            counts[0] += n - assigned;
            b.add_class("players", n, strategies).expect("non-empty class");
            (b.build().expect("valid game"), counts)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loads derived incrementally through arbitrary move sequences always
    /// match a from-scratch recomputation.
    #[test]
    fn loads_stay_consistent_under_moves(
        (game, counts) in arb_game_and_counts(),
        moves in proptest::collection::vec((0u32..5, 0u32..5), 0..30),
    ) {
        let mut state = State::from_counts(&game, counts).unwrap();
        for (f, t) in moves {
            let s = game.num_strategies() as u32;
            let (f, t) = (StrategyId::new(f % s), StrategyId::new(t % s));
            if state.count(f) > 0 {
                state.apply_move(&game, f, t).unwrap();
            }
        }
        prop_assert!(state.loads_consistent(&game));
    }

    /// Rosenthal's defining identity: a unilateral move changes the
    /// potential by exactly the mover's latency change.
    #[test]
    fn potential_tracks_unilateral_deviations(
        (game, counts) in arb_game_and_counts(),
        moves in proptest::collection::vec((0u32..5, 0u32..5), 1..20),
    ) {
        let mut state = State::from_counts(&game, counts).unwrap();
        let mut phi = potential(&game, &state);
        for (f, t) in moves {
            let s = game.num_strategies() as u32;
            let (f, t) = (StrategyId::new(f % s), StrategyId::new(t % s));
            if state.count(f) == 0 || f == t {
                continue;
            }
            let before = state.strategy_latency(&game, f);
            let after = state.latency_after_move(&game, f, t);
            state.apply_move(&game, f, t).unwrap();
            phi += after - before;
            prop_assert!((phi - potential(&game, &state)).abs() < 1e-6);
        }
    }

    /// The per-resource incremental delta matches the potential difference
    /// for arbitrary batch migrations.
    #[test]
    fn batch_delta_matches_potential_difference(
        (game, counts) in arb_game_and_counts(),
        batch in proptest::collection::vec((0u32..5, 0u32..5, 1u64..5), 1..8),
    ) {
        let mut state = State::from_counts(&game, counts).unwrap();
        let before = potential(&game, &state);
        let old_loads = state.loads().to_vec();
        let s = game.num_strategies() as u32;
        let migrations: Vec<Migration> = batch
            .into_iter()
            .map(|(f, t, c)| Migration::new(StrategyId::new(f % s), StrategyId::new(t % s), c))
            .collect();
        if state.apply_migrations(&game, &migrations).is_ok() {
            let delta: f64 = old_loads
                .iter()
                .zip(state.loads())
                .enumerate()
                .map(|(i, (&o, &n))| {
                    potential_delta_for_load_change(&game, ResourceId::new(i as u32), 0, o, n)
                })
                .sum();
            prop_assert!((potential(&game, &state) - before - delta).abs() < 1e-6);
        }
    }

    /// `latency_after_move` agrees with actually applying the move.
    #[test]
    fn hypothetical_latency_matches_applied_move(
        (game, counts) in arb_game_and_counts(),
        f in 0u32..5,
        t in 0u32..5,
    ) {
        let s = game.num_strategies() as u32;
        let (f, t) = (StrategyId::new(f % s), StrategyId::new(t % s));
        let mut state = State::from_counts(&game, counts).unwrap();
        if state.count(f) > 0 {
            let predicted = state.latency_after_move(&game, f, t);
            state.apply_move(&game, f, t).unwrap();
            let actual = state.strategy_latency(&game, t);
            prop_assert!((predicted - actual).abs() < 1e-9);
        }
    }

    /// The average latency is always between the min and max used-strategy
    /// latency, and `L+_av ≥ L_av` for non-decreasing latencies.
    #[test]
    fn average_latency_bounds((game, counts) in arb_game_and_counts()) {
        let state = State::from_counts(&game, counts).unwrap();
        let l_av = congames::model::average_latency(&game, &state);
        let l_plus = congames::model::average_latency_plus(&game, &state);
        prop_assert!(l_plus >= l_av - 1e-12);
        let max = congames::model::makespan(&game, &state);
        prop_assert!(l_av <= max + 1e-12);
    }
}
