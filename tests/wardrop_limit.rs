//! The atomic protocol on player-normalized games converges to the
//! continuous (Wardrop) imitation flow as `n → ∞` — the empirical face of
//! the paper's Section 1.2 remark that the continuous model is the
//! noise-free limit, and the backdrop of Theorem 9's scaled latencies.

use congames::dynamics::{Damping, ImitationProtocol, NuRule, Simulation};
use congames::model::State;
use congames::sampling::seeded_rng;
use congames::wardrop::{FlowState, ImitationFlow};
use congames::{Affine, CongestionGame};

/// Player-normalized two-link game: ℓ_e(x) = a_e·x/n.
fn scaled_game(n: u64) -> CongestionGame {
    CongestionGame::singleton(
        vec![Affine::linear(1.0 / n as f64).into(), Affine::linear(3.0 / n as f64).into()],
        n,
    )
    .unwrap()
}

/// The continuous-model game over the same latencies with unit demand.
fn continuous_game() -> CongestionGame {
    CongestionGame::singleton(vec![Affine::linear(1.0).into(), Affine::linear(3.0).into()], 1)
        .unwrap()
}

/// Mean trajectory distance between the atomic dynamics (share vector) and
/// the deterministic flow, after `rounds` rounds, averaged over seeds.
fn mean_gap(n: u64, rounds: usize, seeds: u64) -> f64 {
    let atomic_game = scaled_game(n);
    let cont_game = continuous_game();
    // One atomic round corresponds to dt = 1 of the mean-field flow (each
    // agent revises once per round).
    let flow = ImitationFlow::new(0.25, 1.0).unwrap();
    let mut total = 0.0;
    for s in 0..seeds {
        let counts = vec![n / 5, n - n / 5];
        let mut sim = Simulation::new(
            &atomic_game,
            ImitationProtocol::paper_default()
                .with_nu_rule(NuRule::None)
                .with_damping(Damping::Elasticity)
                .into(),
            State::from_counts(&atomic_game, counts).unwrap(),
        )
        .unwrap();
        let mut cont = FlowState::new(&cont_game, vec![0.2, 0.8]).unwrap();
        let mut rng = seeded_rng(7000, s);
        let mut worst: f64 = 0.0;
        for _ in 0..rounds {
            sim.step(&mut rng).unwrap();
            flow.step(&cont_game, &mut cont, 1.0);
            let atomic_share = FlowState::from_atomic(&atomic_game, sim.state()).unwrap();
            worst = worst.max(atomic_share.distance(&cont));
        }
        total += worst;
    }
    total / seeds as f64
}

#[test]
fn atomic_dynamics_approach_the_continuous_flow() {
    let gaps: Vec<f64> = [64u64, 512, 4096].iter().map(|&n| mean_gap(n, 30, 12)).collect();
    // The sup-norm trajectory gap must shrink with n (sampling noise is
    // O(1/√n)), and be small in absolute terms for the largest n.
    assert!(gaps[0] > gaps[2], "gap did not shrink: {gaps:?}");
    assert!(gaps[2] < 0.05, "large-n gap too big: {gaps:?}");
}

#[test]
fn continuous_flow_matches_atomic_equilibrium_split() {
    // Both models balance a1·y = a2·(1−y) ⇒ y = 0.75.
    let cont_game = continuous_game();
    let flow = ImitationFlow::new(0.25, 1.0).unwrap();
    let mut cont = FlowState::new(&cont_game, vec![0.2, 0.8]).unwrap();
    flow.run(&cont_game, &mut cont, 0.5, 1e-9, 1_000_000);
    assert!((cont.shares()[0] - 0.75).abs() < 1e-4);

    let n = 4096;
    let atomic_game = scaled_game(n);
    let mut sim = Simulation::new(
        &atomic_game,
        ImitationProtocol::paper_default().with_nu_rule(NuRule::None).into(),
        State::from_counts(&atomic_game, vec![n / 5, n - n / 5]).unwrap(),
    )
    .unwrap();
    let mut rng = seeded_rng(7001, 0);
    for _ in 0..400 {
        sim.step(&mut rng).unwrap();
    }
    let share = sim.state().count(congames::StrategyId::new(0)) as f64 / n as f64;
    assert!((share - 0.75).abs() < 0.02, "atomic share {share}");
}
