//! Property pins for the SIMD dispatch layer under the lane kernel.
//!
//! The `congames-simd` contract is **bit-identity across dispatch arms**:
//! integer kernels (the batched Philox keystream) compute the exact same
//! words in every arm, and float kernels vectorize *across* lanes only —
//! each lane's own operation sequence is unchanged, so no reassociation
//! and no bit drift. This suite pins both halves of that contract:
//!
//! * [`counter_blocks`] (the across-lane Philox sweep behind
//!   `LaneStreams::prime_site`) equals the scalar random-access reference
//!   [`CounterRng::at`] word for word, over random keys, counter
//!   addresses, lane counts (covering every vector-width tail: the 8-,
//!   4-, and 1-lane remainders), and lane strides — in **every** dispatch
//!   arm the host can run;
//! * a [`LaneKernel`] stepped under each vector arm realizes bit for bit
//!   the counts, potential bits, and migration tallies of the same kernel
//!   stepped under forced-scalar dispatch, for every supported lane width
//!   W ∈ {8, 16, 32, 64}.
//!
//! Arms the host CPU cannot execute resolve to the next-best arm (that
//! degradation is part of the dispatch contract), so the suite is
//! meaningful — if weaker — on machines without AVX2/AVX-512.
//! Seeds in `proptest-regressions/prop_simd.txt` replay pinned cases
//! before the random ones on every run.

use congames::dynamics::{ImitationProtocol, LaneKernel, Protocol};
use congames::model::{Affine, CongestionGame, State};
use congames::sampling::{counter_blocks, CounterRng, Dispatch};
use proptest::prelude::*;

/// Lockstep rounds per kernel comparison: enough churn to reach (and
/// cross) the converged fast paths on small fixtures.
const ROUNDS: u64 = 12;

/// Every dispatch value worth forcing on this host: scalar always, plus
/// each vector arm that resolves to itself (i.e. that the CPU can run).
fn arms() -> Vec<Dispatch> {
    let mut arms = vec![Dispatch::Scalar];
    for d in [Dispatch::Avx2, Dispatch::Avx512] {
        if d.resolve() == d {
            arms.push(d);
        }
    }
    arms
}

/// A random singleton fixture: `m` affine links, `n` players skewed onto
/// one link so the first rounds migrate heavily before freezing.
fn arb_fixture() -> impl Strategy<Value = (CongestionGame, State)> {
    (2usize..=8, 64u64..=512, 0usize..8, proptest::collection::vec(1u32..=40, 8)).prop_map(
        |(m, n, hot, slopes)| {
            let game = CongestionGame::singleton(
                (0..m).map(|i| Affine::linear(0.25 * slopes[i] as f64).into()).collect(),
                n,
            )
            .expect("valid game");
            let hot = hot % m;
            let base = n / (2 * m as u64);
            let mut counts = vec![base; m];
            counts[hot] = n - base * (m as u64 - 1);
            let start = State::from_counts(&game, counts).expect("valid start");
            (game, start)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched Philox sweep equals the scalar random-access reference
    /// word for word, in every arm, at every lane-count tail and stride.
    #[test]
    fn batched_philox_matches_scalar(
        base_seed in any::<u64>(),
        round in 0u64..(1 << 40),
        site in 0u64..(1 << 20),
        block in 0u64..(1 << 20),
        first_trial in 0u64..(1 << 40),
        stride in 1u64..=7,
        lanes in 1usize..=64,
    ) {
        let trials: Vec<u64> =
            (0..lanes as u64).map(|l| first_trial + l * stride).collect();
        for d in arms() {
            let mut out = vec![[0u64; 4]; lanes];
            counter_blocks(d, base_seed, round, site, block, &trials, &mut out);
            for (i, &t) in trials.iter().enumerate() {
                for (j, &word) in out[i].iter().enumerate() {
                    let expect =
                        CounterRng::at(base_seed, t, round, site, block * 4 + j as u64);
                    prop_assert!(
                        word == expect,
                        "{d:?}: lane {i} (trial {t}) word {j}: {word:#x} != {expect:#x}"
                    );
                }
            }
        }
    }

    /// A kernel stepped under each vector arm realizes the forced-scalar
    /// trajectory bit for bit at every supported lane width.
    #[test]
    fn simd_step_matches_scalar_dispatch(
        (game, start) in arb_fixture(),
        base_seed in any::<u64>(),
    ) {
        let protocol: Protocol = ImitationProtocol::paper_default().into();
        for width in [8usize, 16, 32, 64] {
            let mut scalar = LaneKernel::new(&game, protocol, &start, base_seed, 0, width)
                .expect("valid kernel")
                .with_dispatch(Dispatch::Scalar);
            for _ in 0..ROUNDS {
                scalar.step();
            }
            for arm in arms().into_iter().filter(|&d| d != Dispatch::Scalar) {
                let mut simd = LaneKernel::new(&game, protocol, &start, base_seed, 0, width)
                    .expect("valid kernel")
                    .with_dispatch(arm);
                for _ in 0..ROUNDS {
                    simd.step();
                }
                for l in 0..width {
                    prop_assert!(
                        simd.lane_counts(l) == scalar.lane_counts(l),
                        "{arm:?} w{width}: lane {l} counts diverged from scalar dispatch"
                    );
                    prop_assert!(
                        simd.lane_potential(l).to_bits() == scalar.lane_potential(l).to_bits(),
                        "{arm:?} w{width}: lane {l} potential bits diverged"
                    );
                    prop_assert!(
                        simd.lane_migrations(l) == scalar.lane_migrations(l),
                        "{arm:?} w{width}: lane {l} migration tally diverged"
                    );
                }
            }
        }
    }
}
