//! Property-based tests of the continuous (Wardrop) model.

use congames::wardrop::{beckmann_potential, FlowState, ImitationFlow};
use congames::{Affine, CongestionGame, Monomial};
use proptest::prelude::*;

fn arb_links() -> impl Strategy<Value = CongestionGame> {
    proptest::collection::vec((1u32..=5, 1u32..=3), 2..=5).prop_map(|specs| {
        CongestionGame::singleton(
            specs
                .into_iter()
                .map(|(a, k)| -> congames::model::LatencyFn {
                    if k == 1 {
                        Affine::linear(a as f64).into()
                    } else {
                        Monomial::new(a as f64, k).into()
                    }
                })
                .collect(),
            1,
        )
        .expect("valid singleton game")
    })
}

fn arb_shares(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, k..=k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Euler steps conserve total demand exactly.
    #[test]
    fn flow_steps_conserve_demand(game in arb_links(), raw in arb_shares(5), dt in 0.01f64..0.5) {
        let shares: Vec<f64> = raw[..game.num_strategies()].to_vec();
        let mut state = FlowState::new(&game, shares).unwrap();
        let demand = state.demand();
        let flow = ImitationFlow::for_game(&game);
        for _ in 0..20 {
            flow.step(&game, &mut state, dt);
            prop_assert!((state.shares().iter().sum::<f64>() - demand).abs() < 1e-9);
            prop_assert!(state.shares().iter().all(|y| *y >= 0.0));
        }
    }

    /// The derivative always sums to zero and the Beckmann potential is
    /// non-increasing along small steps.
    #[test]
    fn beckmann_descends(game in arb_links(), raw in arb_shares(5)) {
        let shares: Vec<f64> = raw[..game.num_strategies()].to_vec();
        let mut state = FlowState::new(&game, shares).unwrap();
        let flow = ImitationFlow::for_game(&game);
        let dy = flow.derivative(&game, &state);
        prop_assert!(dy.iter().sum::<f64>().abs() < 1e-9);
        let mut phi = beckmann_potential(&game, &state);
        for _ in 0..50 {
            flow.step(&game, &mut state, 0.02);
            let next = beckmann_potential(&game, &state);
            prop_assert!(next <= phi + 1e-9, "potential rose {phi} -> {next}");
            phi = next;
        }
    }

    /// Atomic states round-trip into normalized flow states.
    #[test]
    fn atomic_shares_normalize(counts in proptest::collection::vec(0u64..50, 3..=3)) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let n: u64 = counts.iter().sum();
        let game = CongestionGame::singleton(
            vec![
                Affine::linear(1.0).into(),
                Affine::linear(2.0).into(),
                Affine::linear(3.0).into(),
            ],
            n,
        )
        .unwrap();
        let state = congames::State::from_counts(&game, counts.clone()).unwrap();
        let fs = FlowState::from_atomic(&game, &state).unwrap();
        prop_assert!((fs.demand() - 1.0).abs() < 1e-12);
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!((fs.shares()[i] - c as f64 / n as f64).abs() < 1e-12);
        }
    }
}
