//! Property pins for the batched latency-evaluation layer.
//!
//! The batched layer (`Latency::eval_range_into` / `Latency::sum_range`)
//! promises **bit-identical semantics**: batching changes the cost of
//! evaluating a load window, never the result. This suite pins that
//! promise for every latency family over random `(base, lo, hi)` windows:
//!
//! * `eval_range_into` matches pointwise `value()` **bit-for-bit**;
//! * the default `sum_range` (left-to-right summation of the batch
//!   output, [`sum_range_via_eval`]) matches the scalar accumulation loop
//!   it replaced **bit-for-bit**;
//! * the closed-form overrides (`Constant`, `Affine`) match the default
//!   within 1e-12 relative (they are mathematically exact, so they may
//!   differ from the `|range| − 1` sequential roundings by a few ulps);
//! * splitting a window at any interior point and adding the two
//!   `sum_range` halves agrees with the single-pass default over the
//!   whole window within 1e-12 relative;
//! * the batched *defaults* of `max_step`, `sum_range`, and `integral_to`
//!   (exercised through a wrapper that keeps each family's tight
//!   `eval_range_into` loops but drops its closed-form overrides) match
//!   scalar reference loops bit-for-bit.
//!
//! Window lengths are capped at 2048 so the 1e-12 relative tolerance
//! dominates the worst-case `(n−1)·u` error of sequential summation.
//! Seeds in `proptest-regressions/prop_latency_batch.txt` replay pinned
//! cases before the random ones on every run.

use congames::model::latency::sum_range_via_eval;
use congames::model::{Affine, Bpr, Constant, FnLatency, Latency, LatencyFn, Monomial, Polynomial};
use proptest::prelude::*;
use std::ops::Range;

/// Forwarding wrapper that inherits the wrapped family's `value` and tight
/// `eval_range_into` loops but **keeps the trait defaults** for
/// `sum_range`, `max_step`, `elasticity_bound`, `value_at`, and
/// `integral_to` — the probe for "the batched defaults preserve the exact
/// operation order of the scalar loops they replaced".
#[derive(Debug)]
struct DefaultsOf(LatencyFn);

impl Latency for DefaultsOf {
    fn value(&self, load: u64) -> f64 {
        self.0.value(load)
    }

    fn eval_range_into(&self, base: u64, range: Range<u64>, out: &mut [f64]) {
        self.0.eval_range_into(base, range, out);
    }
}

/// A random instance of every latency family; the flag says whether the
/// family overrides `sum_range` with a closed form (`Constant`/`Affine`).
fn arb_latency() -> impl Strategy<Value = (LatencyFn, bool)> {
    (0u32..6, 1u32..=6, (1u32..=40, 0u32..=30), proptest::collection::vec(0u32..=5, 1..=5))
        .prop_map(|(tag, k, (a, b), mut coeffs)| -> (LatencyFn, bool) {
            let af = a as f64 * 0.25;
            match tag {
                0 => (Constant::new(af).into(), true),
                1 => (Affine::new(af, b as f64 * 0.5).into(), true),
                2 => (Monomial::new(0.125 + af, k).into(), false),
                3 => {
                    // Coefficients may be all-zero; force one positive.
                    coeffs.push(1 + a);
                    let coeffs = coeffs.into_iter().map(|c| c as f64 * 0.25).collect();
                    (Polynomial::new(coeffs).into(), false)
                }
                4 => (Bpr::new(0.5 + af, 0.15, 10.0 + b as f64, k).into(), false),
                _ => {
                    let scale = 1.0 + af;
                    (
                        FnLatency::new("sqrtish", move |x| scale * ((x as f64) + 1.0).sqrt())
                            .into(),
                        false,
                    )
                }
            }
        })
}

/// Random evaluation window: base load, start, and a length that stays
/// below the summation-error budget of the 1e-12 relative tolerance.
fn arb_window() -> impl Strategy<Value = (u64, u64, u64)> {
    (0u64..1_000_000, 0u64..3_000, 0u64..=2_048).prop_map(|(base, lo, len)| (base, lo, lo + len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// One batched virtual call returns exactly the pointwise values.
    #[test]
    fn eval_range_matches_pointwise_bitwise(
        (l, _) in arb_latency(),
        (base, lo, hi) in arb_window(),
    ) {
        let mut out = vec![0.0; (hi - lo) as usize];
        l.eval_range_into(base, lo..hi, &mut out);
        for (j, &v) in out.iter().enumerate() {
            let expect = l.value(base + lo + j as u64);
            prop_assert!(
                v.to_bits() == expect.to_bits(),
                "{l:?} batch/pointwise mismatch at load {}",
                base + lo + j as u64
            );
        }
    }

    /// The definitional `sum_range` (left-to-right over the batch output)
    /// reproduces the scalar accumulation loop bit-for-bit; families
    /// without a closed-form override serve exactly that from `sum_range`.
    #[test]
    fn default_sum_matches_scalar_loop_bitwise(
        (l, has_closed_form) in arb_latency(),
        (base, lo, hi) in arb_window(),
    ) {
        let mut scalar = 0.0_f64;
        for i in lo..hi {
            scalar += l.value(base + i);
        }
        let via_eval = sum_range_via_eval(&*l, base, lo..hi);
        prop_assert!(via_eval.to_bits() == scalar.to_bits(), "{l:?} default sum drifted");
        if !has_closed_form {
            prop_assert!(
                l.sum_range(base, lo..hi).to_bits() == scalar.to_bits(),
                "{l:?} sum_range must serve the default bit-identically"
            );
        }
    }

    /// Closed-form overrides agree with the definitional summation to
    /// 1e-12 relative (they are exact, the default rounds sequentially).
    #[test]
    fn closed_forms_match_default_within_tolerance(
        (l, has_closed_form) in arb_latency(),
        (base, lo, hi) in arb_window(),
    ) {
        prop_assume!(has_closed_form);
        let fast = l.sum_range(base, lo..hi);
        let default = sum_range_via_eval(&*l, base, lo..hi);
        let tol = 1e-12 * default.abs().max(1.0);
        prop_assert!((fast - default).abs() <= tol, "{l:?}: {fast} vs {default}");
    }

    /// Merging adjacent windows: `sum_range(a..b) + sum_range(b..c)`
    /// agrees with the single-pass default over `a..c`.
    #[test]
    fn adjacent_ranges_merge(
        (l, _) in arb_latency(),
        (base, a, c) in arb_window(),
        split in 0u64..=2_048,
    ) {
        let b = (a + split.min(c - a)).min(c);
        let merged = l.sum_range(base, a..b) + l.sum_range(base, b..c);
        let single = sum_range_via_eval(&*l, base, a..c);
        let tol = 1e-12 * single.abs().max(1.0);
        prop_assert!((merged - single).abs() <= tol, "{l:?}: {merged} vs {single} (split {b})");
    }

    /// The batched defaults of `max_step`, `sum_range`, and `integral_to`
    /// preserve the scalar reference loops bit-for-bit for every family's
    /// tight `eval_range_into` loops (closed-form overrides stripped).
    #[test]
    fn batched_defaults_match_scalar_references(
        (l, _) in arb_latency(),
        (_, lo, hi) in arb_window(),
    ) {
        let defaults = DefaultsOf(l.clone());
        // max_step: the pre-batching scan over value(lo ..= hi).
        let mut best = 0.0_f64;
        let mut prev = l.value(lo);
        for x in lo + 1..=hi {
            let v = l.value(x);
            best = best.max(v - prev);
            prev = v;
        }
        prop_assert!(
            defaults.max_step(lo, hi).to_bits() == best.to_bits(),
            "{l:?} batched max_step default drifted"
        );
        // integral_to at an integer load: the pre-batching trapezoid loop.
        let whole = (hi - lo).min(300);
        let mut acc = 0.0_f64;
        let mut prev = l.value(0);
        for x in 1..=whole {
            let v = l.value(x);
            acc += 0.5 * (prev + v);
            prev = v;
        }
        prop_assert!(
            defaults.integral_to(whole as f64).to_bits() == acc.to_bits(),
            "{l:?} batched integral_to default drifted"
        );
        // sum_range default on a closed-form family equals the scalar loop.
        let mut scalar = 0.0_f64;
        for i in lo..hi {
            scalar += l.value(i);
        }
        prop_assert!(
            defaults.sum_range(0, lo..hi).to_bits() == scalar.to_bits(),
            "{l:?} default sum_range (overrides stripped) drifted"
        );
    }
}
